(* Tests for the advice framework: assignments, pairing (Lemma 1 plumbing)
   and the variable-length -> uniform 1-bit conversion (Lemma 2). *)

open Netgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Assignment metrics *)

let test_assignment_metrics () =
  let g = Builders.cycle 6 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "101";
  a.(3) <- "1";
  check_int "max bits" 3 (Advice.Assignment.max_bits a);
  check_int "total bits" 4 (Advice.Assignment.total_bits a);
  Alcotest.(check (list int)) "holders" [ 0; 3 ] (Advice.Assignment.holders a);
  check_int "holders in ball r1 of 5" 1
    (Advice.Assignment.holders_in_ball g a ~center:5 ~radius:1);
  check_int "gamma at r=3" 2 (Advice.Assignment.max_holders_per_ball g a ~radius:3);
  check "wellformed" true (Advice.Assignment.is_wellformed a);
  a.(1) <- "x";
  check "malformed" false (Advice.Assignment.is_wellformed a)

let test_uniform_one_bit () =
  let g = Builders.cycle 4 in
  let a = [| "1"; "0"; "0"; "1" |] in
  check "uniform" true (Advice.Assignment.is_uniform_one_bit a);
  Alcotest.(check (float 1e-9)) "sparsity" 0.5 (Advice.Assignment.sparsity a);
  let b = Advice.Assignment.to_bitset a in
  check "bit 0" true (Bitset.mem b 0);
  check "bit 1" false (Bitset.mem b 1);
  let a' = Advice.Assignment.of_bitset b in
  check "roundtrip" true (a = a');
  ignore g

(* ------------------------------------------------------------------ *)
(* Pairing *)

let test_pair_strings () =
  check_str "both empty" "" (Advice.Composable.pair_strings "" "");
  let p = Advice.Composable.pair_strings "10" "011" in
  check_str "pair" "110" (String.sub p 0 3);
  let s1, s2 = Advice.Composable.split_string p in
  check_str "split 1" "10" s1;
  check_str "split 2" "011" s2;
  let s1, s2 = Advice.Composable.split_string (Advice.Composable.pair_strings "" "11") in
  check_str "empty first" "" s1;
  check_str "second" "11" s2;
  let s1, s2 = Advice.Composable.split_string (Advice.Composable.pair_strings "11" "") in
  check_str "first" "11" s1;
  check_str "empty second" "" s2

let test_pair_assignments () =
  let a = [| "1"; ""; "01" |] and b = [| ""; "10"; "1" |] in
  let p = Advice.Composable.pair a b in
  let a', b' = Advice.Composable.split p in
  check "a roundtrip" true (a = a');
  check "b roundtrip" true (b = b')

let test_pair_list () =
  let parts = [ [| "1"; "" |]; [| ""; "01" |]; [| "11"; "1" |] ] in
  let combined = Advice.Composable.pair_list parts in
  let back = Advice.Composable.split_list 3 combined in
  check "list roundtrip" true (parts = back)

let test_pair_preserves_holders () =
  let a = [| "1"; ""; "" |] and b = [| ""; ""; "1" |] in
  let p = Advice.Composable.pair a b in
  Alcotest.(check (list int)) "holders union" [ 0; 2 ] (Advice.Assignment.holders p)

(* ------------------------------------------------------------------ *)
(* One-bit conversion *)

let test_message_structure () =
  check_str "empty string message" "111101100" (Advice.Onebit.message_of "");
  check_str "zero" "11110110" (String.sub (Advice.Onebit.message_of "0") 0 8);
  check_str "full zero msg" "111101101100" (Advice.Onebit.message_of "0");
  check_str "full one msg" "1111011011100" (Advice.Onebit.message_of "1");
  check_int "length" 13 (Advice.Onebit.message_length "1")

let roundtrip g assignment =
  let ones = Advice.Onebit.encode g assignment in
  let back = Advice.Onebit.decode g ones in
  back = assignment

let test_onebit_single_holder_cycle () =
  let g = Builders.cycle 100 in
  let a = Advice.Assignment.empty g in
  a.(10) <- "10110";
  check "roundtrip" true (roundtrip g a)

let test_onebit_multiple_holders () =
  let g = Builders.cycle 300 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "101";
  a.(100) <- "11";
  a.(200) <- "0001";
  check "roundtrip" true (roundtrip g a)

let test_onebit_on_grid () =
  let g = Builders.grid 30 30 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "110";
  (* Opposite corner: far from node 0. *)
  a.((30 * 30) - 1) <- "01";
  check "roundtrip" true (roundtrip g a)

let test_onebit_spacing_rejected () =
  let g = Builders.cycle 100 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "1011";
  a.(5) <- "1100";
  (match Advice.Onebit.encode g a with
  | exception Advice.Onebit.Conversion_failure _ -> ()
  | _ -> Alcotest.fail "expected Conversion_failure for close holders")

let test_onebit_too_small_graph () =
  let g = Builders.cycle 6 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "10110101" (* message longer than any geodesic *);
  (match Advice.Onebit.encode g a with
  | exception Advice.Onebit.Conversion_failure _ -> ()
  | _ -> Alcotest.fail "expected Conversion_failure for short geodesics")

let test_onebit_no_holder () =
  let g = Builders.cycle 20 in
  let a = Advice.Assignment.empty g in
  let ones = Advice.Onebit.encode g a in
  check_int "no ones" 0 (Bitset.cardinal ones);
  check "decode empty" true (Advice.Onebit.decode g ones = a)

let test_onebit_sparsity_decreases () =
  (* Same holder string on larger and larger cycles: global 1-density
     decreases (arbitrarily sparse advice). *)
  let density n =
    let g = Builders.cycle n in
    let a = Advice.Assignment.empty g in
    a.(0) <- "1010";
    let ones = Advice.Onebit.encode g a in
    float_of_int (Bitset.cardinal ones) /. float_of_int n
  in
  check "density shrinks" true (density 400 < density 100)

let test_onebit_qcheck_roundtrip =
  QCheck.Test.make ~name:"one-bit roundtrip on cycles with random strings"
    ~count:60
    QCheck.(
      make
        ~print:(fun (len, bits) -> Printf.sprintf "len=%d bits=%d" len bits)
        Gen.(
          int_range 0 6 >>= fun len ->
          int_range 0 63 >>= fun bits -> return (len, bits)))
    (fun (len, bits) ->
      let s = String.init len (fun i -> if bits land (1 lsl i) <> 0 then '1' else '0') in
      let g = Builders.cycle 120 in
      let a = Advice.Assignment.empty g in
      a.(7) <- s;
      if s = "" then true else roundtrip g a)

let test_onebit_disconnected_components () =
  (* Holders in different components never interfere; spacing checks must
     not reject them. *)
  let g = Builders.disjoint_union (Builders.cycle 60) (Builders.cycle 60) in
  let a = Advice.Assignment.empty g in
  a.(5) <- "101";
  a.(65) <- "11";
  check "roundtrip across components" true (roundtrip g a)

let prop_pair_strings_fuzz =
  QCheck.Test.make ~name:"pair_strings/split_string roundtrip on random bits"
    ~count:200
    QCheck.(
      make
        ~print:(fun (a, b) -> Printf.sprintf "%S %S" a b)
        Gen.(
          let bits = string_size ~gen:(oneofl [ '0'; '1' ]) (int_range 0 12) in
          pair bits bits))
    (fun (a, b) ->
      Advice.Composable.split_string (Advice.Composable.pair_strings a b)
      = (a, b))

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"Bits.encode/decode roundtrip" ~count:200
    QCheck.(
      make
        ~print:(fun (w, v) -> Printf.sprintf "w=%d v=%d" w v)
        Gen.(
          int_range 1 16 >>= fun w ->
          int_range 0 ((1 lsl w) - 1) >>= fun v -> return (w, v)))
    (fun (w, v) ->
      Advice.Bits.decode (Advice.Bits.encode ~width:w v) = v)

let test_schema_measure () =
  let g = Builders.cycle 8 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "11";
  a.(4) <- "0";
  let stats = Advice.Schema.measure ~ball_radius:2 g a in
  check_int "n" 8 stats.Advice.Schema.n;
  check_int "max bits" 2 stats.Advice.Schema.max_bits;
  check_int "holders" 2 stats.Advice.Schema.holders;
  check_int "ones" 1 stats.Advice.Schema.ones;
  check "no sparsity (not uniform)" true (stats.Advice.Schema.sparsity = None);
  (* Node 2's radius-2 ball {0,1,2,3,4} contains both holders. *)
  check "gamma" true (stats.Advice.Schema.max_holders_ball = Some 2)

(* ------------------------------------------------------------------ *)
(* Pipeline composition (Lemma 1 as a combinator) *)

let toy_store node value =
  (* Schema: node [node] stores [value]; decoding reads it back. *)
  {
    Advice.Pipeline.encode =
      (fun g ->
        let a = Advice.Assignment.empty g in
        a.(node) <- Advice.Bits.encode_int value;
        a);
    decode = (fun _ a -> Advice.Bits.decode a.(node));
  }

let test_pipeline_compose () =
  let g = Builders.cycle 10 in
  (* Stage 1 stores 5 at node 0; stage 2, given the oracle answer x,
     stores x * 3 at node 1 and decodes their sum. *)
  let composed =
    Advice.Pipeline.compose (toy_store 0 5) ~with_oracle:(fun x ->
        Advice.Pipeline.map (fun y -> x + y) (toy_store 1 (x * 3)))
  in
  let a = composed.Advice.Pipeline.encode g in
  check_int "composed result" 20 (composed.Advice.Pipeline.decode g a);
  (* Both stages' holders coexist in the paired assignment. *)
  Alcotest.(check (list int)) "holders" [ 0; 1 ] (Advice.Assignment.holders a)

let test_pipeline_pair_constant () =
  let g = Builders.cycle 6 in
  let both = Advice.Pipeline.pair (toy_store 2 7) (Advice.Pipeline.constant 99) in
  let a = both.Advice.Pipeline.encode g in
  check "pair decodes" true (both.Advice.Pipeline.decode g a = (7, 99));
  let empty = Advice.Pipeline.constant 1 in
  check_int "constant uses no advice" 0
    (Advice.Assignment.total_bits (empty.Advice.Pipeline.encode g))

(* ------------------------------------------------------------------ *)
(* Definitions 2-4 as executable checks *)

let test_definition_beta () =
  let a = [| "101"; ""; "1" |] in
  check "beta 3 ok" true (Advice.Definition.respects_beta a ~beta:3);
  check "beta 2 violated" false (Advice.Definition.respects_beta a ~beta:2)

let test_definition_types () =
  check "uniform" true (Advice.Definition.is_uniform_fixed_length [| "10"; "01"; "11" |]);
  check "not uniform" false (Advice.Definition.is_uniform_fixed_length [| "10"; "0" |]);
  check "subset fixed" true (Advice.Definition.is_subset_fixed_length [| "10"; ""; "01" |]);
  check "variable" false (Advice.Definition.is_subset_fixed_length [| "10"; "0" |])

let test_definition_sparse () =
  let a = [| "1"; "0"; "0"; "0" |] in
  check "eps .25" true (Advice.Definition.is_epsilon_sparse a ~epsilon:0.25);
  check "eps .2" false (Advice.Definition.is_epsilon_sparse a ~epsilon:0.2)

let test_definition_composability () =
  let g = Builders.cycle 100 in
  let a = Advice.Assignment.empty g in
  a.(0) <- "11";
  a.(50) <- "10";
  let r = Advice.Definition.composability g a ~c:1.0 ~gamma:2 ~alpha:20 in
  check "composable" true r.Advice.Definition.ok;
  (* Holders too dense for a small gamma at a big radius. *)
  let r = Advice.Definition.composability g a ~c:1.0 ~gamma:1 ~alpha:60 in
  check "violation detected" false r.Advice.Definition.ok

let () =
  Alcotest.run "advice"
    [
      ( "assignment",
        [
          Alcotest.test_case "metrics" `Quick test_assignment_metrics;
          Alcotest.test_case "uniform one bit" `Quick test_uniform_one_bit;
          Alcotest.test_case "schema measure" `Quick test_schema_measure;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "compose" `Quick test_pipeline_compose;
          Alcotest.test_case "pair and constant" `Quick test_pipeline_pair_constant;
        ] );
      ( "definitions",
        [
          Alcotest.test_case "beta bound" `Quick test_definition_beta;
          Alcotest.test_case "schema types" `Quick test_definition_types;
          Alcotest.test_case "epsilon sparsity" `Quick test_definition_sparse;
          Alcotest.test_case "composability" `Quick test_definition_composability;
        ] );
      ( "pairing",
        [
          Alcotest.test_case "strings" `Quick test_pair_strings;
          Alcotest.test_case "assignments" `Quick test_pair_assignments;
          Alcotest.test_case "lists" `Quick test_pair_list;
          Alcotest.test_case "holders union" `Quick test_pair_preserves_holders;
        ] );
      ( "onebit",
        [
          Alcotest.test_case "message structure" `Quick test_message_structure;
          Alcotest.test_case "single holder cycle" `Quick
            test_onebit_single_holder_cycle;
          Alcotest.test_case "multiple holders" `Quick test_onebit_multiple_holders;
          Alcotest.test_case "grid" `Quick test_onebit_on_grid;
          Alcotest.test_case "spacing rejected" `Quick test_onebit_spacing_rejected;
          Alcotest.test_case "short geodesics rejected" `Quick
            test_onebit_too_small_graph;
          Alcotest.test_case "no holder" `Quick test_onebit_no_holder;
          Alcotest.test_case "sparsity decreases" `Quick
            test_onebit_sparsity_decreases;
          QCheck_alcotest.to_alcotest test_onebit_qcheck_roundtrip;
          Alcotest.test_case "disconnected components" `Quick
            test_onebit_disconnected_components;
          QCheck_alcotest.to_alcotest prop_pair_strings_fuzz;
          QCheck_alcotest.to_alcotest prop_bits_roundtrip;
        ] );
    ]
