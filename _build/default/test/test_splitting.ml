(* Tests for the Section 5 extensions: 2-coloring beacons, splitting, and
   recursive Δ-edge-coloring of bipartite Δ-regular graphs (Δ = 2^k). *)

open Netgraph
open Schemas

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* 2-coloring beacons *)

let test_two_coloring_grid () =
  let g = Builders.grid 15 17 in
  let advice = Two_coloring.encode g in
  let colors = Two_coloring.decode g advice in
  check "proper" true (Coloring.is_proper g colors);
  check_int "two colors" 2 (Coloring.num_colors colors)

let test_two_coloring_even_cycle () =
  let g = Builders.cycle 200 in
  let advice = Two_coloring.encode g in
  let colors = Two_coloring.decode g advice in
  check "proper" true (Coloring.is_proper g colors)

let test_two_coloring_rejects_odd_cycle () =
  let g = Builders.cycle 9 in
  match Two_coloring.encode g with
  | exception Two_coloring.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "expected failure on odd cycle"

let test_two_coloring_sparse () =
  let g = Builders.cycle 1000 in
  let params = { Two_coloring.spread = 50 } in
  let advice = Two_coloring.encode ~params g in
  check "few holders" true (Advice.Assignment.num_holders advice <= 1000 / 50 * 2);
  check "1 bit each" true (Advice.Assignment.max_bits advice = 1);
  let colors = Two_coloring.decode ~params g advice in
  check "proper" true (Coloring.is_proper g colors)

let test_two_coloring_disconnected () =
  let g = Builders.disjoint_union (Builders.cycle 40) (Builders.grid 5 5) in
  let advice = Two_coloring.encode g in
  let colors = Two_coloring.decode g advice in
  check "proper" true (Coloring.is_proper g colors)

let test_two_coloring_beacon_spread () =
  let g = Builders.grid 20 20 in
  let params = { Two_coloring.spread = 6 } in
  let advice = Two_coloring.encode ~params g in
  let holders = Advice.Assignment.holders advice in
  let dist = Traversal.bfs_distances_multi g holders in
  Graph.iter_nodes
    (fun v ->
      check "dominated within spread" true
        (dist.(v) >= 0 && dist.(v) <= Two_coloring.decode_radius params))
    g

let test_two_coloring_locality () =
  let g = Builders.cycle 400 in
  let params = { Two_coloring.spread = 8 } in
  let advice = Two_coloring.encode ~params g in
  let decode g ~ids:_ ~advice = Two_coloring.decode ~params g advice in
  let ids = Array.init (Graph.n g) (fun v -> v + 1) in
  check "2-coloring decode is local" true
    (Localmodel.Locality.stable_for_all g ~ids ~advice ~decode ~equal:( = )
       ~radius:(Two_coloring.decode_radius params + 1)
       ~samples:[ 3; 77; 200; 399 ])

(* ------------------------------------------------------------------ *)
(* Splitting *)

let test_splitting_even_cycle () =
  let g = Builders.cycle 120 in
  let advice = Splitting.encode g in
  let colors = Splitting.decode g advice in
  check "valid splitting" true (Splitting.verify g colors)

let test_splitting_grid_torus () =
  (* Even-by-even torus: bipartite, 4-regular. *)
  let g = Builders.torus 8 10 in
  let advice = Splitting.encode g in
  let colors = Splitting.decode g advice in
  check "valid splitting" true (Splitting.verify g colors)

let test_splitting_rejects_odd_degree () =
  let g = Builders.path 5 in
  match Splitting.encode g with
  | exception Splitting.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "expected rejection (odd degrees)"

let test_splitting_rejects_non_bipartite () =
  let g = Builders.cycle 9 in
  match Splitting.encode g with
  | exception Splitting.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "expected rejection (odd cycle)"

let test_splitting_bipartite_regular () =
  let rng = Prng.create 3 in
  let g = Builders.random_bipartite_regular rng 30 4 in
  let advice = Splitting.encode g in
  check "valid splitting" true (Splitting.verify g (Splitting.decode g advice))

(* ------------------------------------------------------------------ *)
(* Lemma-1 pipeline equivalence: splitting = orientation ∘ 2-coloring *)

let test_splitting_as_pipeline () =
  (* Rebuild the splitting schema from its two composable ingredients via
     the generic Lemma-1 combinator and check it solves the problem. *)
  let orientation_schema =
    {
      Advice.Pipeline.encode =
        (fun g ->
          (Balanced_orientation.encode g).Balanced_orientation.assignment);
      decode = (fun g a -> Balanced_orientation.decode g a);
    }
  in
  let coloring_schema =
    {
      Advice.Pipeline.encode = (fun g -> Two_coloring.encode g);
      decode = (fun g a -> Two_coloring.decode g a);
    }
  in
  let split_schema =
    Advice.Pipeline.compose orientation_schema ~with_oracle:(fun o ->
        Advice.Pipeline.map
          (fun side ->
            (* Red = out of a color-1 node, exactly as Splitting does. *)
            fun g ->
              Array.init (Graph.m g) (fun e ->
                  let u, v = Graph.edge_endpoints g e in
                  let tail = if Orientation.points_from o u v then u else v in
                  if side.(tail) = 1 then 1 else 2))
          coloring_schema)
  in
  let g = Builders.cycle 200 in
  let a = split_schema.Advice.Pipeline.encode g in
  let colors = split_schema.Advice.Pipeline.decode g a g in
  check "pipeline splitting valid" true (Splitting.verify g colors)

(* ------------------------------------------------------------------ *)
(* Δ-edge coloring, Δ = 2^k *)

let test_edge_coloring_matching () =
  (* 1-regular: a perfect matching; single color, no advice needed. *)
  let g = Graph.of_edges ~n:6 [ (0, 3); (1, 4); (2, 5) ] in
  let advice = Edge_coloring_pow2.encode g in
  let colors = Edge_coloring_pow2.decode g advice in
  check "valid" true (Edge_coloring_pow2.verify g colors);
  check_int "one color" 1 (Array.fold_left max 0 colors)

let test_edge_coloring_cycle () =
  (* Even cycle = 2-regular bipartite: 2 colors. *)
  let g = Builders.cycle 60 in
  let advice = Edge_coloring_pow2.encode g in
  let colors = Edge_coloring_pow2.decode g advice in
  check "valid" true (Edge_coloring_pow2.verify g colors);
  check_int "two colors" 2 (Array.fold_left max 0 colors)

let test_edge_coloring_torus () =
  (* 4-regular bipartite torus: 4 colors. *)
  let g = Builders.torus 8 8 in
  let advice = Edge_coloring_pow2.encode g in
  let colors = Edge_coloring_pow2.decode g advice in
  check "valid" true (Edge_coloring_pow2.verify g colors);
  check "at most 4 colors" true (Array.fold_left max 0 colors <= 4)

let test_edge_coloring_random_regular () =
  let rng = Prng.create 11 in
  let g = Builders.random_bipartite_regular rng 40 4 in
  let advice = Edge_coloring_pow2.encode g in
  let colors = Edge_coloring_pow2.decode g advice in
  check "valid" true (Edge_coloring_pow2.verify g colors)

let test_edge_coloring_eight_regular () =
  let rng = Prng.create 13 in
  let g = Builders.random_bipartite_regular rng 60 8 in
  let advice = Edge_coloring_pow2.encode g in
  let colors = Edge_coloring_pow2.decode g advice in
  check "valid" true (Edge_coloring_pow2.verify g colors);
  check "at most 8 colors" true (Array.fold_left max 0 colors <= 8)

let test_edge_coloring_rejects_non_power () =
  let rng = Prng.create 17 in
  let g = Builders.random_bipartite_regular rng 30 3 in
  match Edge_coloring_pow2.encode g with
  | exception Edge_coloring_pow2.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "expected rejection (Δ=3)"

let prop_edge_coloring =
  QCheck.Test.make ~name:"recursive splitting edge-colors bipartite regular graphs"
    ~count:15
    QCheck.(
      make
        ~print:(fun (side, logd, seed) ->
          Printf.sprintf "side=%d d=%d seed=%d" side (1 lsl logd) seed)
        Gen.(
          int_range 20 50 >>= fun side ->
          int_range 1 2 >>= fun logd ->
          int_range 0 500 >>= fun seed -> return (side, logd, seed)))
    (fun (side, logd, seed) ->
      let rng = Prng.create seed in
      let g = Builders.random_bipartite_regular rng side (1 lsl logd) in
      let advice = Edge_coloring_pow2.encode g in
      Edge_coloring_pow2.verify g (Edge_coloring_pow2.decode g advice))

let () =
  Alcotest.run "splitting"
    [
      ( "two-coloring",
        [
          Alcotest.test_case "grid" `Quick test_two_coloring_grid;
          Alcotest.test_case "even cycle" `Quick test_two_coloring_even_cycle;
          Alcotest.test_case "odd cycle rejected" `Quick
            test_two_coloring_rejects_odd_cycle;
          Alcotest.test_case "sparse" `Quick test_two_coloring_sparse;
          Alcotest.test_case "disconnected" `Quick test_two_coloring_disconnected;
          Alcotest.test_case "beacon spread" `Quick test_two_coloring_beacon_spread;
          Alcotest.test_case "locality" `Slow test_two_coloring_locality;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "even cycle" `Quick test_splitting_even_cycle;
          Alcotest.test_case "torus" `Quick test_splitting_grid_torus;
          Alcotest.test_case "odd degree rejected" `Quick
            test_splitting_rejects_odd_degree;
          Alcotest.test_case "non-bipartite rejected" `Quick
            test_splitting_rejects_non_bipartite;
          Alcotest.test_case "bipartite regular" `Quick
            test_splitting_bipartite_regular;
          Alcotest.test_case "as a Lemma-1 pipeline" `Quick
            test_splitting_as_pipeline;
        ] );
      ( "edge-coloring",
        [
          Alcotest.test_case "matching" `Quick test_edge_coloring_matching;
          Alcotest.test_case "cycle" `Quick test_edge_coloring_cycle;
          Alcotest.test_case "torus" `Quick test_edge_coloring_torus;
          Alcotest.test_case "random 4-regular" `Quick
            test_edge_coloring_random_regular;
          Alcotest.test_case "random 8-regular" `Quick
            test_edge_coloring_eight_regular;
          Alcotest.test_case "non-power rejected" `Quick
            test_edge_coloring_rejects_non_power;
          QCheck_alcotest.to_alcotest prop_edge_coloring;
        ] );
    ]
