test/test_delta_coloring.ml: Advice Alcotest Builders Coloring Delta_coloring Gen Graph List Netgraph Printf Prng QCheck QCheck_alcotest Schemas Traversal
