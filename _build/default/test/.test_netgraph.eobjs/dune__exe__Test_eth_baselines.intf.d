test/test_eth_baselines.mli:
