test/test_netgraph.ml: Alcotest Array Bitset Builders Coloring Graph List Netgraph Orientation Printf Prng QCheck QCheck_alcotest Ruling Traversal
