test/test_localmodel.ml: Advice Alcotest Array Builders Graph List Localmodel Netgraph Prng Traversal
