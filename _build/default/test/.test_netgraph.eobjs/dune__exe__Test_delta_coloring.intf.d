test/test_delta_coloring.mli:
