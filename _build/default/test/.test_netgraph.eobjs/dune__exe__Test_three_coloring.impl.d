test/test_three_coloring.ml: Advice Alcotest Array Builders Coloring Gen Graph List Netgraph Printf Prng QCheck QCheck_alcotest Schemas Three_coloring
