test/test_splitting.mli:
