test/test_localmodel.mli:
