test/test_three_coloring.mli:
