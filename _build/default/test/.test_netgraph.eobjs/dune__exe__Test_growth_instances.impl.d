test/test_growth_instances.ml: Alcotest Array Builders Coloring Degeneracy Gen Graph Growth Lcl List Netgraph Orientation Printf Prng QCheck QCheck_alcotest Schemas
