test/test_orientation_schema.mli:
