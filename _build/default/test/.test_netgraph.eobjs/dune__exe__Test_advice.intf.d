test/test_advice.mli:
