test/test_eth_baselines.ml: Advice Alcotest Array Baselines Bitset Builders Coloring Ethlink Graph Hashtbl Lcl List Localmodel Netgraph Orientation Prng String
