test/test_lcl.ml: Alcotest Array Builders Coloring Gen Graph Lcl List Netgraph Printf Prng QCheck QCheck_alcotest
