test/test_adaptive.ml: Advice Alcotest Array Builders Gen Graph Lcl List Netgraph Printf QCheck QCheck_alcotest Schemas String Subexp_adaptive Traversal
