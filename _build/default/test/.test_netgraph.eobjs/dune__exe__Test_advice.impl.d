test/test_advice.ml: Advice Alcotest Array Bitset Builders Gen Netgraph Printf QCheck QCheck_alcotest String
