test/test_distributed.ml: Advice Alcotest Balanced_orientation Builders Coloring Distributed Gen Graph Netgraph Orientation Printf Prng QCheck QCheck_alcotest Schemas Two_coloring
