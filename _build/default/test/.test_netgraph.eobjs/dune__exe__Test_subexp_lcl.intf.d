test/test_subexp_lcl.mli:
