test/test_subexp_lcl.ml: Advice Alcotest Array Bitset Builders Gen Graph Lcl Netgraph Printf Prng QCheck QCheck_alcotest Schemas Subexp_lcl
