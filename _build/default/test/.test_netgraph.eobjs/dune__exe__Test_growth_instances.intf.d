test/test_growth_instances.mli:
