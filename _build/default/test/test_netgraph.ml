(* Tests for the graph substrate: structure, generators, traversal,
   coloring, ruling sets and Eulerian orientations. *)

open Netgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph structure *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check_int "n" 4 (Graph.n g);
  check_int "m" 4 (Graph.m g);
  check_int "deg 0" 2 (Graph.degree g 0);
  check "edge 0-1" true (Graph.is_edge g 0 1);
  check "edge 1-0" true (Graph.is_edge g 1 0);
  check "no edge 0-2" false (Graph.is_edge g 0 2);
  check "no self edge" false (Graph.is_edge g 1 1)

let test_of_edges_dedup () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (1, 2) ] in
  check_int "m deduplicated" 2 (Graph.m g)

let test_of_edges_rejects_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:2 [ (1, 1) ]))

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_edge_ids_dense () =
  let g = Builders.cycle 5 in
  let seen = Array.make (Graph.m g) false in
  Graph.iter_edges (fun e _ -> seen.(e) <- true) g;
  check "all ids hit" true (Array.for_all (fun b -> b) seen);
  Graph.iter_edges
    (fun e (u, v) ->
      check "u<v" true (u < v);
      check_int "roundtrip" e (Graph.edge_id g u v))
    g

let test_incident_edges () =
  let g = Builders.cycle 4 in
  Graph.iter_nodes
    (fun v ->
      let inc = Graph.incident_edges g v in
      check_int "degree matches" (Graph.degree g v) (Array.length inc);
      Array.iteri
        (fun i e ->
          let u = (Graph.neighbors g v).(i) in
          check_int "edge matches neighbor" (Graph.edge_id g v u) e)
        inc)
    g

let test_induced () =
  let g = Builders.cycle 6 in
  let h, to_sub, to_orig = Graph.induced g [ 0; 1; 2; 4 ] in
  check_int "nodes" 4 (Graph.n h);
  check_int "edges (0-1, 1-2)" 2 (Graph.m h);
  check_int "to_sub 4" 3 to_sub.(4);
  check_int "to_orig roundtrip" 4 to_orig.(to_sub.(4));
  check_int "absent" (-1) to_sub.(5)

let test_remove_nodes () =
  let g = Builders.cycle 6 in
  let removed = Bitset.of_list 6 [ 0 ] in
  let h, _, _ = Graph.remove_nodes g removed in
  check_int "path of 5 nodes" 5 (Graph.n h);
  check_int "path edges" 4 (Graph.m h)

let test_power () =
  let g = Builders.path 5 in
  let g2 = Graph.power g 2 in
  check "dist-2 pair" true (Graph.is_edge g2 0 2);
  check "dist-1 pair kept" true (Graph.is_edge g2 0 1);
  check "dist-3 pair absent" false (Graph.is_edge g2 0 3);
  let cycle = Builders.cycle 6 in
  let c2 = Graph.power cycle 2 in
  check_int "cycle^2 is 4-regular" 4 (Graph.max_degree c2)

let test_line_graph () =
  let g = Builders.path 4 in
  (* 3 edges in a path: line graph is a path on 3 nodes with 2 edges. *)
  let lg = Graph.line_graph g in
  check_int "line nodes" 3 (Graph.n lg);
  check_int "line edges" 2 (Graph.m lg)

let test_connectivity () =
  check "cycle connected" true (Graph.is_connected (Builders.cycle 5));
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "two components" false (Graph.is_connected g)

(* ------------------------------------------------------------------ *)
(* Builders *)

let test_builders_shapes () =
  check_int "cycle m" 7 (Graph.m (Builders.cycle 7));
  check_int "path m" 6 (Graph.m (Builders.path 7));
  check_int "complete m" 21 (Graph.m (Builders.complete 7));
  check_int "K23 m" 6 (Graph.m (Builders.complete_bipartite 2 3));
  check_int "grid m" (2 * 3 * 4 - 3 - 4) (Graph.m (Builders.grid 3 4));
  check_int "torus m" (2 * 9) (Graph.m (Builders.torus 3 3));
  check_int "hypercube m" (3 * 4) (Graph.m (Builders.hypercube 3));
  check_int "kary nodes" 7 (Graph.n (Builders.complete_kary_tree 2 2))

let test_random_tree () =
  let rng = Prng.create 42 in
  let g = Builders.random_tree rng 50 in
  check_int "tree edges" 49 (Graph.m g);
  check "tree connected" true (Graph.is_connected g)

let test_random_regular () =
  let rng = Prng.create 7 in
  let g = Builders.random_regular rng 20 4 in
  Graph.iter_nodes (fun v -> check_int "regular" 4 (Graph.degree g v)) g

let test_random_even_degree () =
  let rng = Prng.create 11 in
  let g = Builders.random_even_degree rng 30 3 in
  Graph.iter_nodes
    (fun v -> check_int "even degree" 0 (Graph.degree g v mod 2))
    g

let test_random_bipartite_regular () =
  let rng = Prng.create 3 in
  let g = Builders.random_bipartite_regular rng 12 4 in
  Graph.iter_nodes (fun v -> check_int "regular" 4 (Graph.degree g v)) g;
  check "bipartite" true (Traversal.is_bipartite g)

let test_planted_colorable () =
  let rng = Prng.create 5 in
  let g, coloring = Builders.planted_colorable rng 40 3 0.15 in
  check "planted proper" true (Coloring.is_proper g coloring);
  check_int "three colors" 3 (Coloring.num_colors coloring)

let test_planted_max_degree () =
  let rng = Prng.create 9 in
  let g, coloring = Builders.planted_max_degree_colorable rng ~n:60 ~delta:5 in
  check "planted proper" true (Coloring.is_proper g coloring);
  check "degree cap" true (Graph.max_degree g <= 5)

let test_disjoint_union () =
  let g = Builders.disjoint_union (Builders.cycle 3) (Builders.cycle 4) in
  check_int "nodes" 7 (Graph.n g);
  check_int "edges" 7 (Graph.m g);
  check "split" false (Graph.is_edge g 2 3)

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs_distances () =
  let g = Builders.cycle 8 in
  let dist = Traversal.bfs_distances g 0 in
  check_int "dist 0" 0 dist.(0);
  check_int "dist 1" 1 dist.(1);
  check_int "antipode" 4 dist.(4);
  check_int "wrap" 1 dist.(7)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let dist = Traversal.bfs_distances g 0 in
  check_int "unreachable" (-1) dist.(3)

let test_ball_sphere () =
  let g = Builders.grid 5 5 in
  let b = Traversal.ball g 12 1 in
  check_int "center ball" 5 (List.length b);
  let s = Traversal.sphere g 12 2 in
  check_int "center sphere r=2" 8 (List.length s)

let test_distance_pairs () =
  let g = Builders.grid 4 4 in
  check_int "corner to corner" 6 (Traversal.distance g 0 15);
  check_int "self" 0 (Traversal.distance g 3 3)

let test_shortest_path_lex_least () =
  (* Two shortest paths 0-1-3 and 0-2-3; lexicographically least is via 1. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check (list int)) "lex least" [ 0; 1; 3 ] (Traversal.shortest_path g 0 3)

let test_shortest_path_is_shortest () =
  let rng = Prng.create 99 in
  let g = Builders.gnp rng 30 0.15 in
  Graph.iter_nodes
    (fun v ->
      let d = Traversal.distance g 0 v in
      if d >= 0 then begin
        let p = Traversal.shortest_path g 0 v in
        check_int "length matches distance" (d + 1) (List.length p)
      end)
    g

let test_diameter () =
  check_int "cycle 8" 4 (Traversal.diameter (Builders.cycle 8));
  check_int "path 5" 4 (Traversal.diameter (Builders.path 5));
  check_int "complete" 1 (Traversal.diameter (Builders.complete 5))

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let comp, k = Traversal.components g in
  check_int "three components" 3 k;
  check_int "same comp" comp.(2) comp.(4);
  check "diff comp" true (comp.(0) <> comp.(2))

let test_bipartition () =
  let g = Builders.cycle 6 in
  (match Traversal.bipartition g with
  | Some side ->
      Graph.iter_edges
        (fun _ (u, v) -> check "sides differ" true (side.(u) <> side.(v)))
        g
  | None -> Alcotest.fail "even cycle is bipartite");
  check "odd cycle" true (Traversal.bipartition (Builders.cycle 5) = None)

let test_growth () =
  let g = Builders.grid 9 9 in
  let center = (4 * 9) + 4 in
  check_int "r=0" 1 (Traversal.growth g center 0);
  check_int "r=1" 5 (Traversal.growth g center 1);
  check_int "r=2" 13 (Traversal.growth g center 2)

(* ------------------------------------------------------------------ *)
(* Coloring *)

let test_greedy_proper () =
  let rng = Prng.create 17 in
  let g = Builders.gnp rng 60 0.1 in
  let c = Coloring.greedy g in
  check "greedy proper" true (Coloring.is_proper g c);
  check "greedy is greedy" true (Coloring.is_greedy g c);
  check "color bound" true (Coloring.num_colors c <= Graph.max_degree g + 1)

let test_make_greedy () =
  let rng = Prng.create 23 in
  let g, planted = Builders.planted_colorable rng 50 3 0.2 in
  let greedy = Coloring.make_greedy g planted in
  check "still proper" true (Coloring.is_proper g greedy);
  check "greedy property" true (Coloring.is_greedy g greedy);
  check "no new colors" true (Coloring.num_colors greedy <= Coloring.num_colors planted)

let test_distance_coloring () =
  let g = Builders.cycle 12 in
  let c = Coloring.distance_coloring g 3 in
  Graph.iter_nodes
    (fun v ->
      List.iter
        (fun u ->
          if u <> v then check "distinct within distance" true (c.(u) <> c.(v)))
        (Traversal.ball g v 3))
    g

let test_two_color_bipartite () =
  let g = Builders.grid 4 5 in
  let c = Coloring.two_color_bipartite g in
  check "proper" true (Coloring.is_proper g c);
  check_int "two colors" 2 (Coloring.num_colors c)

let test_backtracking () =
  (* Odd cycle needs 3 colors. *)
  let g = Builders.cycle 7 in
  check "2 colors impossible" true (Coloring.backtracking g 2 = None);
  (match Coloring.backtracking g 3 with
  | Some c -> check "3 coloring proper" true (Coloring.is_proper g c)
  | None -> Alcotest.fail "cycle is 3-colorable");
  let k5 = Builders.complete 5 in
  check "K5 not 4-colorable" true (Coloring.backtracking k5 4 = None)

let test_color_classes () =
  let c = [| 1; 2; 1; 3; 2 |] in
  let classes = Coloring.color_classes c in
  Alcotest.(check (list int)) "class 1" [ 0; 2 ] classes.(1);
  Alcotest.(check (list int)) "class 3" [ 3 ] classes.(3)

(* ------------------------------------------------------------------ *)
(* Ruling sets *)

let test_greedy_mis () =
  let rng = Prng.create 31 in
  let g = Builders.gnp rng 50 0.1 in
  let mis = Ruling.greedy_mis g in
  check "independent" true (Ruling.is_independent g mis);
  check "maximal = (2,1) ruling" true (Ruling.verify_ruling g mis ~alpha:2 ~beta:1)

let test_ruling_set () =
  let g = Builders.cycle 40 in
  let rs = Ruling.ruling_set g ~alpha:5 in
  check "ruling (5,4)" true (Ruling.verify_ruling g rs ~alpha:5 ~beta:4)

let test_ruling_set_of_candidates () =
  let g = Builders.cycle 30 in
  let candidates = [ 0; 3; 6; 9; 12; 15; 18; 21; 24; 27 ] in
  let rs = Ruling.ruling_set_of g ~candidates ~alpha:6 in
  let rec pairs = function
    | [] -> ()
    | v :: rest ->
        List.iter
          (fun u -> check "far apart" true (Traversal.distance g u v >= 6))
          rest;
        pairs rest
  in
  pairs rs;
  let dist = Traversal.bfs_distances_multi g rs in
  List.iter (fun c -> check "candidate dominated" true (dist.(c) <= 5)) candidates

(* ------------------------------------------------------------------ *)
(* Orientation and Eulerian partition *)

let test_orientation_basic () =
  let g = Builders.cycle 4 in
  let o = Orientation.create g in
  check "default low->high" true (Orientation.points_from o 0 1);
  Orientation.orient o 1 0;
  check "reoriented" true (Orientation.points_from o 1 0);
  check "other side" false (Orientation.points_from o 0 1)

let test_out_in_degree () =
  let g = Builders.cycle 4 in
  let o = Orientation.create g in
  Graph.iter_nodes
    (fun v ->
      check_int "degrees sum" (Graph.degree g v)
        (Orientation.out_degree o v + Orientation.in_degree o v))
    g

let trail_is_valid g (t : Orientation.trail) =
  let len = Array.length t.Orientation.edges in
  Array.length t.Orientation.nodes = len + 1
  && (not t.Orientation.closed || t.Orientation.nodes.(0) = t.Orientation.nodes.(len))
  && Array.for_all (fun b -> b)
       (Array.init len (fun i ->
            let e = t.Orientation.edges.(i) in
            let a, b = Graph.edge_endpoints g e in
            let x = t.Orientation.nodes.(i) and y = t.Orientation.nodes.(i + 1) in
            (a = x && b = y) || (a = y && b = x)))

let test_euler_partition_covers () =
  let rng = Prng.create 41 in
  let g = Builders.random_even_degree rng 25 2 in
  let trails = Orientation.euler_partition g in
  let covered = Bitset.create (Graph.m g) in
  List.iter
    (fun t ->
      check "trail valid" true (trail_is_valid g t);
      check "even-degree graph: closed" true t.Orientation.closed;
      Array.iter
        (fun e ->
          check "edge not repeated" false (Bitset.mem covered e);
          Bitset.add covered e)
        t.Orientation.edges)
    trails;
  check_int "all edges covered" (Graph.m g) (Bitset.cardinal covered)

let test_euler_partition_odd_degrees () =
  let g = Builders.path 6 in
  let trails = Orientation.euler_partition g in
  check_int "single open trail" 1 (List.length trails);
  List.iter (fun t -> check "open" false t.Orientation.closed) trails

let test_euler_endpoint_multiplicity () =
  let rng = Prng.create 43 in
  let g = Builders.gnp rng 30 0.15 in
  let trails = Orientation.euler_partition g in
  let endpoint_count = Array.make (Graph.n g) 0 in
  List.iter
    (fun (t : Orientation.trail) ->
      if not t.Orientation.closed then begin
        let last = Array.length t.Orientation.nodes - 1 in
        endpoint_count.(t.Orientation.nodes.(0)) <-
          endpoint_count.(t.Orientation.nodes.(0)) + 1;
        endpoint_count.(t.Orientation.nodes.(last)) <-
          endpoint_count.(t.Orientation.nodes.(last)) + 1
      end)
    trails;
  Graph.iter_nodes
    (fun v ->
      let expected = if Graph.degree g v mod 2 = 1 then 1 else 0 in
      check_int "open-trail endpoints = odd-degree nodes" expected
        endpoint_count.(v))
    g

let test_of_trails_balanced () =
  let rng = Prng.create 47 in
  let g = Builders.random_even_degree rng 40 3 in
  let o = Orientation.of_trails g (fun _ -> true) in
  check "balanced on even degrees" true (Orientation.is_balanced o)

let test_of_trails_almost_balanced () =
  let rng = Prng.create 53 in
  let g = Builders.gnp rng 40 0.12 in
  let o = Orientation.of_trails g (fun _ -> false) in
  check "almost balanced" true (Orientation.is_almost_balanced o)

let test_trail_through_consistent () =
  let rng = Prng.create 59 in
  let g = Builders.random_even_degree rng 20 2 in
  let trails = Orientation.euler_partition g in
  Graph.iter_edges
    (fun e (u, _) ->
      let t = Orientation.trail_through g u e in
      let expected =
        List.find
          (fun t -> Array.exists (fun e' -> e' = e) t.Orientation.edges)
          trails
      in
      check "same trail object" true (t = expected))
    g

let test_out_neighbors_canonical () =
  let g = Builders.complete 4 in
  let o = Orientation.create g in
  Alcotest.(check (array int)) "node 1 out" [| 2; 3 |] (Orientation.out_neighbors o 1)

(* ------------------------------------------------------------------ *)
(* Bitset and Prng *)

let test_bitset () =
  let b = Bitset.create 100 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  check_int "cardinal" 4 (Bitset.cardinal b);
  check "mem 63" true (Bitset.mem b 63);
  Bitset.remove b 63;
  check "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 99 ] (Bitset.to_list b);
  let c = Bitset.copy b in
  Bitset.add c 1;
  check "copy independent" false (Bitset.mem b 1);
  check "equal self" true (Bitset.equal b b);
  check "unequal" false (Bitset.equal b c)

let test_prng_determinism () =
  let a = Prng.create 1234 and b = Prng.create 1234 in
  for _ = 1 to 100 do
    check "same stream" true (Prng.int a 1000 = Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    check "in range" true (x >= 0 && x < 7)
  done

let test_prng_permutation () =
  let rng = Prng.create 2 in
  let p = Prng.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let arb_small_graph =
  let gen =
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      int_range 0 100 >>= fun seed ->
      float_range 0.0 0.3 >>= fun p -> return (n, seed, p))
  in
  QCheck.make
    ~print:(fun (n, seed, p) -> Printf.sprintf "(n=%d, seed=%d, p=%f)" n seed p)
    gen

let graph_of (n, seed, p) = Builders.gnp (Prng.create seed) n p

let prop_greedy_proper =
  QCheck.Test.make ~name:"greedy coloring is proper on random graphs" ~count:100
    arb_small_graph (fun params ->
      let g = graph_of params in
      Coloring.is_proper g (Coloring.greedy g))

let prop_euler_covers =
  QCheck.Test.make ~name:"euler partition covers each edge once" ~count:100
    arb_small_graph (fun params ->
      let g = graph_of params in
      let total =
        List.fold_left
          (fun acc t -> acc + Array.length t.Orientation.edges)
          0 (Orientation.euler_partition g)
      in
      total = Graph.m g)

let prop_trail_orientation_almost_balanced =
  QCheck.Test.make ~name:"trail orientation is almost balanced" ~count:100
    arb_small_graph (fun params ->
      let g = graph_of params in
      Orientation.is_almost_balanced (Orientation.of_trails g (fun _ -> true)))

let prop_mis_is_ruling =
  QCheck.Test.make ~name:"greedy MIS is a (2,1)-ruling set" ~count:50
    arb_small_graph (fun params ->
      let g = graph_of params in
      if Graph.n g = 0 then true
      else
        let mis = Ruling.greedy_mis g in
        Ruling.verify_ruling g mis ~alpha:2 ~beta:1)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances satisfy edge triangle inequality"
    ~count:50 arb_small_graph (fun params ->
      let g = graph_of params in
      if Graph.n g = 0 then true
      else begin
        let dist = Traversal.bfs_distances g 0 in
        Graph.fold_edges
          (fun _ (u, v) acc ->
            acc
            &&
            match (dist.(u), dist.(v)) with
            | -1, -1 -> true
            | du, dv when du >= 0 && dv >= 0 -> abs (du - dv) <= 1
            | _ -> false)
          g true
      end)

let prop_power_distance =
  QCheck.Test.make ~name:"power graph edges are distance <= k pairs" ~count:30
    arb_small_graph (fun params ->
      let g = graph_of params in
      let k = 2 in
      let gk = Graph.power g k in
      Graph.fold_edges
        (fun _ (u, v) acc ->
          let d = Traversal.distance g u v in
          acc && d >= 1 && d <= k)
        gk true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_greedy_proper;
      prop_euler_covers;
      prop_trail_orientation_almost_balanced;
      prop_mis_is_ruling;
      prop_bfs_triangle_inequality;
      prop_power_distance;
    ]

let () =
  Alcotest.run "netgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges basic" `Quick test_of_edges_basic;
          Alcotest.test_case "of_edges dedup" `Quick test_of_edges_dedup;
          Alcotest.test_case "rejects self loops" `Quick test_of_edges_rejects_loop;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edge ids dense" `Quick test_edge_ids_dense;
          Alcotest.test_case "incident edges" `Quick test_incident_edges;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
          Alcotest.test_case "remove nodes" `Quick test_remove_nodes;
          Alcotest.test_case "power graph" `Quick test_power;
          Alcotest.test_case "line graph" `Quick test_line_graph;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
        ] );
      ( "builders",
        [
          Alcotest.test_case "shapes" `Quick test_builders_shapes;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "random even degree" `Quick test_random_even_degree;
          Alcotest.test_case "random bipartite regular" `Quick
            test_random_bipartite_regular;
          Alcotest.test_case "planted colorable" `Quick test_planted_colorable;
          Alcotest.test_case "planted max degree" `Quick test_planted_max_degree;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "ball and sphere" `Quick test_ball_sphere;
          Alcotest.test_case "pairwise distance" `Quick test_distance_pairs;
          Alcotest.test_case "shortest path lex least" `Quick
            test_shortest_path_lex_least;
          Alcotest.test_case "shortest path length" `Quick
            test_shortest_path_is_shortest;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bipartition" `Quick test_bipartition;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "greedy proper" `Quick test_greedy_proper;
          Alcotest.test_case "make greedy" `Quick test_make_greedy;
          Alcotest.test_case "distance coloring" `Quick test_distance_coloring;
          Alcotest.test_case "two color bipartite" `Quick test_two_color_bipartite;
          Alcotest.test_case "backtracking" `Quick test_backtracking;
          Alcotest.test_case "color classes" `Quick test_color_classes;
        ] );
      ( "ruling",
        [
          Alcotest.test_case "greedy MIS" `Quick test_greedy_mis;
          Alcotest.test_case "ruling set" `Quick test_ruling_set;
          Alcotest.test_case "ruling of candidates" `Quick
            test_ruling_set_of_candidates;
        ] );
      ( "orientation",
        [
          Alcotest.test_case "basic" `Quick test_orientation_basic;
          Alcotest.test_case "degrees" `Quick test_out_in_degree;
          Alcotest.test_case "euler covers" `Quick test_euler_partition_covers;
          Alcotest.test_case "euler odd degrees" `Quick
            test_euler_partition_odd_degrees;
          Alcotest.test_case "euler endpoints" `Quick
            test_euler_endpoint_multiplicity;
          Alcotest.test_case "trails balanced" `Quick test_of_trails_balanced;
          Alcotest.test_case "trails almost balanced" `Quick
            test_of_trails_almost_balanced;
          Alcotest.test_case "trail_through consistent" `Quick
            test_trail_through_consistent;
          Alcotest.test_case "out neighbors canonical" `Quick
            test_out_neighbors_canonical;
        ] );
      ( "containers",
        [
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
          Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
          Alcotest.test_case "prng permutation" `Quick test_prng_permutation;
        ] );
      ("properties", qcheck_cases);
    ]
