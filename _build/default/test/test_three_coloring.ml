(* Tests for Contribution 6: 3-coloring 3-colorable graphs with one bit of
   advice per node. *)

open Netgraph
open Schemas

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A caterpillar: a long path (which becomes a large color-{2,3} component)
   with a pendant color-1 node attached to every path node.  The canonical
   hard case: pinning the 2-coloring parity of the path needs the group
   mechanism. *)
let caterpillar len =
  let path_edges = List.init (len - 1) (fun i -> (i, i + 1)) in
  let pendant_edges = List.init len (fun i -> (i, len + i)) in
  let g = Graph.of_edges ~n:(2 * len) (path_edges @ pendant_edges) in
  let witness =
    Array.init (2 * len) (fun v ->
        if v >= len then 1 (* pendants *) else 2 + (v mod 2))
  in
  (g, witness)

let roundtrip ?witness g =
  let advice = Three_coloring.encode ?witness g in
  let colors = Three_coloring.decode g advice in
  (advice, colors)

let test_small_cycles () =
  List.iter
    (fun n ->
      let g = Builders.cycle n in
      let _, colors = roundtrip g in
      check "proper" true (Coloring.is_proper g colors);
      check "3 colors" true (Coloring.num_colors colors <= 3))
    [ 3; 4; 5; 6; 7; 12; 13 ]

let test_large_cycle_with_witness () =
  (* Greedy 3-colorings of cycles have tiny color-{2,3} components, so the
     canonical branch handles everything. *)
  let g = Builders.cycle 301 in
  let witness =
    Array.init 301 (fun v -> if v = 300 then 3 else 1 + (v mod 2))
  in
  let _, colors = roundtrip ~witness g in
  check "proper" true (Coloring.is_proper g colors);
  check "3 colors" true (Coloring.num_colors colors <= 3)

let test_planted_random () =
  let rng = Prng.create 5 in
  for _ = 1 to 5 do
    let g, witness = Builders.planted_colorable rng 80 3 0.08 in
    let _, colors = roundtrip ~witness g in
    check "proper" true (Coloring.is_proper g colors);
    check "3 colors" true (Coloring.num_colors colors <= 3)
  done

let test_caterpillar_groups () =
  let g, witness = caterpillar 300 in
  let advice, colors = roundtrip ~witness g in
  check "proper" true (Coloring.is_proper g colors);
  check "3 colors" true (Coloring.num_colors colors <= 3);
  (* The path is one large component: group bits beyond the color-1 class
     must exist. *)
  let phi = Coloring.make_greedy g witness in
  let color1 = Array.fold_left (fun acc c -> if c = 1 then acc + 1 else acc) 0 phi in
  check "extra group bits" true (Advice.Assignment.ones advice > color1)

let test_uniform_one_bit () =
  let g, witness = caterpillar 120 in
  let advice, _ = roundtrip ~witness g in
  check "uniform 1-bit" true (Advice.Assignment.is_uniform_one_bit advice)

let test_classification_matches_colors () =
  let g, witness = caterpillar 250 in
  let advice, colors = roundtrip ~witness g in
  let kinds = Three_coloring.classify g advice in
  Array.iteri
    (fun v kind ->
      match kind with
      | `Type1 -> check_int "type1 is color 1" 1 colors.(v)
      | `Type23 | `Zero -> check "others are 2/3" true (colors.(v) > 1))
    kinds

let test_group_members_see_two_ones () =
  let g, witness = caterpillar 250 in
  let advice, _ = roundtrip ~witness g in
  let kinds = Three_coloring.classify g advice in
  Array.iteri
    (fun v kind ->
      if kind = `Type23 then begin
        let ones =
          Array.fold_left
            (fun acc u -> if advice.(u) = "1" then acc + 1 else acc)
            0 (Graph.neighbors g v)
        in
        check "two 1-neighbors" true (ones >= 2)
      end)
    kinds

let test_non_three_colorable_rejected () =
  let g = Builders.complete 4 in
  match Three_coloring.encode g with
  | exception Three_coloring.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "K4 should be rejected"

let test_malformed_advice_rejected () =
  let g = Builders.cycle 12 in
  let advice = Array.make 12 "" in
  (match Three_coloring.decode g advice with
  | exception Three_coloring.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "expected rejection of empty strings")

let test_disconnected () =
  let g1, w1 = caterpillar 100 in
  let g2 = Builders.cycle 9 in
  let g = Builders.disjoint_union g1 g2 in
  let w2 =
    match Coloring.backtracking g2 3 with
    | Some c -> c
    | None -> Alcotest.fail "cycle 9 is 3-colorable"
  in
  let witness = Array.append w1 w2 in
  let _, colors = roundtrip ~witness g in
  check "proper" true (Coloring.is_proper g colors);
  check "3 colors" true (Coloring.num_colors colors <= 3)

let test_bipartite_input () =
  (* 2-colorable graphs are 3-colorable; the greedy coloring uses 2 colors
     and the color-{2,3} subgraph is an independent set. *)
  let g = Builders.grid 10 12 in
  let witness = Coloring.two_color_bipartite g in
  let _, colors = roundtrip ~witness g in
  check "proper" true (Coloring.is_proper g colors)

let prop_planted_roundtrip =
  QCheck.Test.make ~name:"3-coloring advice roundtrips on planted graphs"
    ~count:25
    QCheck.(
      make
        ~print:(fun (n, seed, p) -> Printf.sprintf "n=%d seed=%d p=%.3f" n seed p)
        Gen.(
          int_range 20 90 >>= fun n ->
          int_range 0 1000 >>= fun seed ->
          float_range 0.02 0.15 >>= fun p -> return (n, seed, p)))
    (fun (n, seed, p) ->
      let rng = Prng.create seed in
      let g, witness = Builders.planted_colorable rng n 3 p in
      let advice = Three_coloring.encode ~witness g in
      let colors = Three_coloring.decode g advice in
      Coloring.is_proper g colors && Coloring.num_colors colors <= 3)

let prop_caterpillar_roundtrip =
  QCheck.Test.make ~name:"3-coloring advice roundtrips on caterpillars"
    ~count:10
    QCheck.(
      make
        ~print:(fun len -> Printf.sprintf "len=%d" len)
        Gen.(int_range 60 400))
    (fun len ->
      let g, witness = caterpillar len in
      let advice = Three_coloring.encode ~witness g in
      let colors = Three_coloring.decode g advice in
      Coloring.is_proper g colors && Coloring.num_colors colors <= 3)

let () =
  Alcotest.run "three-coloring"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "small cycles" `Quick test_small_cycles;
          Alcotest.test_case "large cycle" `Quick test_large_cycle_with_witness;
          Alcotest.test_case "planted random" `Quick test_planted_random;
          Alcotest.test_case "caterpillar (groups)" `Quick test_caterpillar_groups;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "bipartite input" `Quick test_bipartite_input;
        ] );
      ( "structure",
        [
          Alcotest.test_case "uniform one bit" `Quick test_uniform_one_bit;
          Alcotest.test_case "classification" `Quick
            test_classification_matches_colors;
          Alcotest.test_case "group members see two ones" `Quick
            test_group_members_see_two_ones;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "K4" `Quick test_non_three_colorable_rejected;
          Alcotest.test_case "malformed advice" `Quick
            test_malformed_advice_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_planted_roundtrip;
          QCheck_alcotest.to_alcotest prop_caterpillar_roundtrip;
        ] );
    ]
