(* Tests for Contribution 5: Δ-coloring Δ-colorable graphs with advice. *)

open Netgraph
open Schemas

let check = Alcotest.(check bool)

let roundtrip g =
  let advice = Delta_coloring.encode g in
  let colors = Delta_coloring.decode g advice in
  (advice, colors)

let assert_delta_coloring g colors =
  check "proper" true (Coloring.is_proper g colors);
  check "at most Δ colors" true (Coloring.num_colors colors <= Graph.max_degree g)

let test_planted_delta4 () =
  let rng = Prng.create 3 in
  let g, _ = Builders.planted_max_degree_colorable rng ~n:120 ~delta:4 in
  let _, colors = roundtrip g in
  assert_delta_coloring g colors

let test_planted_delta6 () =
  let rng = Prng.create 7 in
  let g, _ = Builders.planted_max_degree_colorable rng ~n:150 ~delta:6 in
  let _, colors = roundtrip g in
  assert_delta_coloring g colors

let test_grid_delta4 () =
  (* Interior grid nodes have degree 4; grids are 2-colorable, so trivially
     4-colorable. *)
  let g = Builders.grid 12 12 in
  let _, colors = roundtrip g in
  assert_delta_coloring g colors

let test_torus () =
  let g = Builders.torus 8 9 in
  let _, colors = roundtrip g in
  assert_delta_coloring g colors

let test_hypercube () =
  let g = Builders.hypercube 4 in
  let _, colors = roundtrip g in
  assert_delta_coloring g colors

let test_stages_consistent () =
  let rng = Prng.create 11 in
  let g, _ = Builders.planted_max_degree_colorable rng ~n:100 ~delta:5 in
  let advice = Delta_coloring.encode g in
  let big, psi, final = Delta_coloring.decode_stages g advice in
  let delta = Graph.max_degree g in
  check "stage 1 proper" true (Coloring.is_proper g big);
  check "stage 2 proper" true (Coloring.is_proper g psi);
  check "stage 2 within Δ+1" true (Coloring.num_colors psi <= delta + 1);
  check "stage 3 proper" true (Coloring.is_proper g final);
  check "stage 3 within Δ" true (Coloring.num_colors final <= delta)

let test_complete_graph_rejected () =
  (* K_{Δ+1} is not Δ-colorable; the shift search must fail. *)
  let g = Builders.complete 5 in
  match Delta_coloring.encode g with
  | exception Delta_coloring.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "K5 must be rejected for Δ=4"

let test_low_degree_rejected () =
  let g = Builders.cycle 10 in
  match Delta_coloring.encode g with
  | exception Delta_coloring.Encoding_failure _ -> ()
  | _ -> Alcotest.fail "Δ=2 must be rejected"

let test_cluster_advice_on_centers_only () =
  let rng = Prng.create 13 in
  let g, _ = Builders.planted_max_degree_colorable rng ~n:80 ~delta:4 in
  let advice = Delta_coloring.encode g in
  let cluster_part, _ = Advice.Composable.split advice in
  let holders = Advice.Assignment.holders cluster_part in
  (* Centers form a ruling set: pairwise distance >= spread. *)
  let spread = Delta_coloring.default_params.Delta_coloring.cluster_spread in
  let rec pairs = function
    | [] -> ()
    | v :: rest ->
        List.iter
          (fun u ->
            let d = Traversal.distance g u v in
            check "centers spread" true (d < 0 || d >= spread))
          rest;
        pairs rest
  in
  pairs holders

let prop_planted_roundtrip =
  QCheck.Test.make ~name:"Δ-coloring advice roundtrips on planted graphs"
    ~count:15
    QCheck.(
      make
        ~print:(fun (n, delta, seed) ->
          Printf.sprintf "n=%d delta=%d seed=%d" n delta seed)
        Gen.(
          int_range 40 120 >>= fun n ->
          int_range 4 7 >>= fun delta ->
          int_range 0 1000 >>= fun seed -> return (n, delta, seed)))
    (fun (n, delta, seed) ->
      let rng = Prng.create seed in
      let g, _ = Builders.planted_max_degree_colorable rng ~n ~delta in
      let advice = Delta_coloring.encode g in
      let colors = Delta_coloring.decode g advice in
      Coloring.is_proper g colors
      && Coloring.num_colors colors <= Graph.max_degree g)

let () =
  Alcotest.run "delta-coloring"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "planted Δ=4" `Quick test_planted_delta4;
          Alcotest.test_case "planted Δ=6" `Quick test_planted_delta6;
          Alcotest.test_case "grid" `Quick test_grid_delta4;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "stages" `Quick test_stages_consistent;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "K5" `Quick test_complete_graph_rejected;
          Alcotest.test_case "low degree" `Quick test_low_degree_rejected;
        ] );
      ( "structure",
        [
          Alcotest.test_case "cluster centers" `Quick
            test_cluster_advice_on_centers_only;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_planted_roundtrip ]);
    ]
