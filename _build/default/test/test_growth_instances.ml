(* Tests for the growth machinery (Lemma 4.3 of the paper), the degeneracy
   substrate, and the extended LCL instance battery. *)

open Netgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Growth profiles and Lemma 3 *)

let test_profile_cycle () =
  let g = Builders.cycle 50 in
  Alcotest.(check (list int)) "linear growth" [ 1; 3; 5; 7 ]
    (Growth.profile g 0 3)

let test_profile_grid () =
  let g = Builders.grid 11 11 in
  let center = (5 * 11) + 5 in
  Alcotest.(check (list int)) "quadratic growth" [ 1; 5; 13; 25 ]
    (Growth.profile g center 3)

let test_sphere_sizes () =
  let g = Builders.cycle 20 in
  Alcotest.(check (list int)) "spheres" [ 1; 2; 2 ] (Growth.sphere_sizes g 0 2)

let test_exponent_estimates () =
  let cycle = Builders.cycle 200 in
  let e1 = Growth.exponent_estimate cycle ~v:0 ~rmax:20 in
  check "cycle exponent ~1" true (e1 > 0.7 && e1 < 1.3);
  let grid = Builders.grid 41 41 in
  let e2 = Growth.exponent_estimate grid ~v:((20 * 41) + 20) ~rmax:15 in
  check "grid exponent ~2" true (e2 > 1.5 && e2 < 2.5);
  (* The log-log slope saturates on finite expanders, but a hypercube
     still grows distinctly faster than the 2-dimensional grid. *)
  let cube = Builders.hypercube 9 in
  let e3 = Growth.exponent_estimate cube ~v:0 ~rmax:4 in
  check "hypercube grows faster than the grid" true (e3 > e2 +. 0.2)

let test_lemma3_on_bounded_growth () =
  (* On cycles, balls grow linearly and spheres stay constant: the
     Lemma-3 radius exists for any r once x covers the Δ^r factor. *)
  let g = Builders.cycle 400 in
  (match Growth.lemma3_alpha g ~v:0 ~r:2 ~x:8 with
  | Some alpha ->
      check "alpha in range" true (alpha >= 8 && alpha <= 16);
      (* Verify the inequality the lemma promises. *)
      let spheres = Array.of_list (Growth.sphere_sizes g 0 (alpha + 2)) in
      let balls = Array.of_list (Growth.profile g 0 alpha) in
      check "|ball| >= Δ^r |sphere|" true
        (balls.(alpha) >= 4 * spheres.(alpha + 2))
  | None -> Alcotest.fail "cycles satisfy Lemma 3");
  let grid = Builders.grid 41 41 in
  check "grids satisfy Lemma 3" true
    (Growth.lemma3_alpha grid ~v:((20 * 41) + 20) ~r:1 ~x:10 <> None)

let test_lemma3_fails_on_expanders () =
  (* On a hypercube spheres dwarf balls at small radii: no α in a small
     window satisfies the inequality for r = 2. *)
  let g = Builders.hypercube 9 in
  check "hypercube: no Lemma-3 radius at small x" true
    (Growth.lemma3_alpha g ~v:0 ~r:2 ~x:2 = None)

(* ------------------------------------------------------------------ *)
(* Degeneracy substrate *)

let test_degeneracy_values () =
  check_int "tree" 1 (snd (Degeneracy.order (Builders.random_tree (Prng.create 1) 30)));
  check_int "cycle" 2 (snd (Degeneracy.order (Builders.cycle 12)));
  check_int "K6" 5 (snd (Degeneracy.order (Builders.complete 6)));
  check_int "grid" 2 (snd (Degeneracy.order (Builders.grid 6 6)))

let prop_degeneracy_orientation_bound =
  QCheck.Test.make ~name:"degeneracy orientation bounds out-degrees" ~count:50
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
        Gen.(
          int_range 5 50 >>= fun n ->
          int_range 0 500 >>= fun seed -> return (n, seed)))
    (fun (n, seed) ->
      let g = Builders.gnp (Prng.create seed) n 0.2 in
      let pos, d = Degeneracy.order g in
      let o = Degeneracy.orient g pos in
      Graph.fold_nodes (fun v acc -> acc && Orientation.out_degree o v <= d) g true)

(* ------------------------------------------------------------------ *)
(* Extended LCL instances *)

let solver_valid prob g =
  match prob.Lcl.Problem.solve g with
  | None -> false
  | Some l -> Lcl.Problem.verify prob g l

let test_defective_coloring () =
  let rng = Prng.create 3 in
  let g = Builders.gnp rng 60 0.15 in
  let delta = Graph.max_degree g in
  (* 2 colors with defect Δ/2 are always greedy-feasible. *)
  let prob = Lcl.Instances.defective_coloring ~colors:2 ~defect:(delta / 2) in
  check "defective solver valid" true (solver_valid prob g);
  (* Defect 0 with enough colors degenerates to proper coloring. *)
  let proper = Lcl.Instances.defective_coloring ~colors:(delta + 1) ~defect:0 in
  (match proper.Lcl.Problem.solve g with
  | Some l ->
      check "defect 0 is proper" true (Coloring.is_proper g l.Lcl.Labeling.node_labels)
  | None -> Alcotest.fail "proper coloring exists");
  (* Validation rejects over-defective labelings. *)
  let k4 = Builders.complete 4 in
  let all_same = Lcl.Labeling.of_node_labels [| 1; 1; 1; 1 |] in
  let tight = Lcl.Instances.defective_coloring ~colors:2 ~defect:1 in
  check "defect bound enforced" false (Lcl.Problem.verify tight k4 all_same)

let test_bounded_outdegree () =
  let g = Builders.grid 8 8 in
  (* Grids are 2-degenerate: out-degree 2 suffices. *)
  let prob = Lcl.Instances.bounded_outdegree_orientation 2 in
  check "grid oriented with outdeg <= 2" true (solver_valid prob g);
  (* A cycle cannot be oriented with out-degree 0... but k >= 1 always
     works on cycles. *)
  let c = Builders.cycle 10 in
  check "cycle outdeg 1" true
    (solver_valid (Lcl.Instances.bounded_outdegree_orientation 1) c);
  (* K5 has pseudoarboricity 2: k = 1 is infeasible (10 edges, 5 nodes). *)
  let k5 = Builders.complete 5 in
  check "K5 outdeg 1 infeasible" true
    ((Lcl.Instances.bounded_outdegree_orientation 1).Lcl.Problem.solve k5 = None)

let test_minimal_dominating () =
  let rng = Prng.create 7 in
  List.iter
    (fun g ->
      check "MDS solver valid" true
        (solver_valid Lcl.Instances.minimal_dominating_set g))
    [ Builders.cycle 30; Builders.grid 6 6; Builders.gnp rng 40 0.1 ];
  (* The full node set is dominating but not minimal on an edge. *)
  let g = Builders.path 2 in
  let all = Lcl.Labeling.of_node_labels [| 2; 2 |] in
  check "non-minimal rejected" false
    (Lcl.Problem.verify Lcl.Instances.minimal_dominating_set g all)

let test_forbidden_color_coloring () =
  let rng = Prng.create 11 in
  let g = Builders.gnp rng 40 0.12 in
  let n = Graph.n g in
  let forbidden = Array.init n (fun v -> 1 + (v mod 3)) in
  let k = Graph.max_degree g + 2 in
  let prob = Lcl.Instances.forbidden_color_coloring k ~forbidden in
  (match prob.Lcl.Problem.solve g with
  | None -> Alcotest.fail "greedy with k = Δ+2 always succeeds"
  | Some l ->
      check "valid" true (Lcl.Problem.verify prob g l);
      Array.iteri
        (fun v c ->
          check "forbidden avoided" true (c <> forbidden.(v)))
        l.Lcl.Labeling.node_labels);
  (* The input restriction can make small palettes infeasible. *)
  let path = Builders.path 2 in
  let tight = Lcl.Instances.forbidden_color_coloring 2 ~forbidden:[| 1; 2 |] in
  (match tight.Lcl.Problem.solve path with
  | Some l ->
      check "respects forbidden" true (Lcl.Problem.verify tight path l)
  | None -> Alcotest.fail "colors 2 and 1 remain available");
  let impossible = Lcl.Instances.forbidden_color_coloring 2 ~forbidden:[| 1; 1 |] in
  check "infeasible detected" true (impossible.Lcl.Problem.solve path = None);
  (* And the advice schema handles the input-labeled problem unchanged. *)
  let cyc = Builders.cycle 200 in
  let forbidden = Array.init 200 (fun v -> 1 + (v mod 4)) in
  let prob = Lcl.Instances.forbidden_color_coloring 4 ~forbidden in
  let advice = Schemas.Subexp_lcl.encode prob cyc in
  let labeling = Schemas.Subexp_lcl.decode prob cyc advice in
  check "advice solves input-labeled LCL" true
    (Lcl.Problem.verify prob cyc labeling)

let test_new_instances_with_advice () =
  (* The Section-4 schema is problem-generic: it should handle the new
     instances out of the box. *)
  let g = Builders.cycle 300 in
  List.iter
    (fun prob ->
      let advice = Schemas.Subexp_lcl.encode prob g in
      let labeling = Schemas.Subexp_lcl.decode prob g advice in
      check (prob.Lcl.Problem.name ^ " via advice") true
        (Lcl.Problem.verify prob g labeling))
    [
      Lcl.Instances.defective_coloring ~colors:2 ~defect:1;
      Lcl.Instances.bounded_outdegree_orientation 1;
      Lcl.Instances.minimal_dominating_set;
    ]

let () =
  Alcotest.run "growth-instances"
    [
      ( "growth",
        [
          Alcotest.test_case "cycle profile" `Quick test_profile_cycle;
          Alcotest.test_case "grid profile" `Quick test_profile_grid;
          Alcotest.test_case "spheres" `Quick test_sphere_sizes;
          Alcotest.test_case "exponents" `Quick test_exponent_estimates;
          Alcotest.test_case "lemma 3 holds (bounded growth)" `Quick
            test_lemma3_on_bounded_growth;
          Alcotest.test_case "lemma 3 fails (expander)" `Quick
            test_lemma3_fails_on_expanders;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "values" `Quick test_degeneracy_values;
          QCheck_alcotest.to_alcotest prop_degeneracy_orientation_bound;
        ] );
      ( "instances",
        [
          Alcotest.test_case "defective coloring" `Quick test_defective_coloring;
          Alcotest.test_case "bounded outdegree" `Quick test_bounded_outdegree;
          Alcotest.test_case "minimal dominating" `Quick test_minimal_dominating;
          Alcotest.test_case "forbidden colors (input-labeled)" `Quick
            test_forbidden_color_coloring;
          Alcotest.test_case "new instances with advice" `Quick
            test_new_instances_with_advice;
        ] );
    ]
