(* Tests for the LCL formalism: labelings, verification, instances and the
   backtracking completion engine. *)

open Netgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Labeling *)

let test_labeling_halves () =
  let g = Builders.cycle 4 in
  let l = Lcl.Labeling.create g ~use_halves:true in
  check "uses halves" true (Lcl.Labeling.uses_halves l);
  let e = Graph.edge_id g 0 1 in
  Lcl.Labeling.set_half l g 0 e 2;
  check_int "get back" 2 (Lcl.Labeling.get_half l g 0 e);
  check_int "other side untouched" 0 (Lcl.Labeling.get_half_other l g 0 e);
  Lcl.Labeling.set_half l g 1 e 1;
  check_int "other side" 1 (Lcl.Labeling.get_half_other l g 0 e)

let test_labeling_copy_independent () =
  let g = Builders.cycle 4 in
  let l = Lcl.Labeling.create g ~use_halves:true in
  let l2 = Lcl.Labeling.copy l in
  l2.Lcl.Labeling.node_labels.(0) <- 7;
  Lcl.Labeling.set_half l2 g 0 (Graph.edge_id g 0 1) 2;
  check_int "node untouched" 0 l.Lcl.Labeling.node_labels.(0);
  check_int "half untouched" 0 (Lcl.Labeling.get_half l g 0 (Graph.edge_id g 0 1))

let test_labeling_restrict () =
  let g = Builders.cycle 6 in
  let l = Lcl.Labeling.of_node_labels [| 1; 2; 3; 1; 2; 3 |] in
  let sub, _, to_global = Graph.induced g [ 0; 1; 2 ] in
  let r = Lcl.Labeling.restrict l g ~sub ~to_global in
  Alcotest.(check (array int)) "restricted" [| 1; 2; 3 |] r.Lcl.Labeling.node_labels

(* ------------------------------------------------------------------ *)
(* Instances: solvers produce valid solutions *)

let solver_produces_valid prob g =
  match prob.Lcl.Problem.solve g with
  | None -> false
  | Some l -> Lcl.Problem.verify prob g l

let test_instance_solvers () =
  let rng = Prng.create 17 in
  let graphs =
    [
      Builders.cycle 20;
      Builders.grid 5 6;
      Builders.gnp rng 40 0.1;
      Builders.circulant 30 [ 1; 2 ];
    ]
  in
  List.iter
    (fun g ->
      let delta = max 2 (Graph.max_degree g) in
      List.iter
        (fun (name, prob) ->
          check (prob.Lcl.Problem.name ^ " solver valid: " ^ name) true
            (solver_produces_valid prob g))
        (Lcl.Instances.all_bounded_degree delta))
    graphs

let test_coloring_constraints () =
  let prob = Lcl.Instances.coloring 3 in
  let g = Builders.cycle 4 in
  let good = Lcl.Labeling.of_node_labels [| 1; 2; 1; 2 |] in
  check "proper accepted" true (Lcl.Problem.verify prob g good);
  let bad = Lcl.Labeling.of_node_labels [| 1; 1; 2; 3 |] in
  check "conflict rejected" false (Lcl.Problem.verify prob g bad);
  let out_of_range = Lcl.Labeling.of_node_labels [| 1; 2; 1; 4 |] in
  check "range enforced" false (Lcl.Problem.verify prob g out_of_range)

let test_mis_constraints () =
  let g = Builders.path 4 in
  let good = Lcl.Labeling.of_node_labels [| 2; 1; 2; 1 |] in
  check "MIS accepted" true (Lcl.Problem.verify Lcl.Instances.mis g good);
  let not_maximal = Lcl.Labeling.of_node_labels [| 2; 1; 1; 1 |] in
  check "non-maximal rejected" false
    (Lcl.Problem.verify Lcl.Instances.mis g not_maximal);
  let not_independent = Lcl.Labeling.of_node_labels [| 2; 2; 1; 2 |] in
  check "non-independent rejected" false
    (Lcl.Problem.verify Lcl.Instances.mis g not_independent)

let test_sinkless_constraints () =
  let g = Builders.complete 4 in
  (* Degree-3 nodes must each have an outgoing edge. *)
  let prob = Lcl.Instances.sinkless_orientation in
  match prob.Lcl.Problem.solve g with
  | None -> Alcotest.fail "solver failed on K4"
  | Some l ->
      check "valid" true (Lcl.Problem.verify prob g l);
      (* Make node 0 a sink: flip all its halves to 'in'. *)
      let bad = Lcl.Labeling.copy l in
      Array.iteri
        (fun i _ -> bad.Lcl.Labeling.half_labels.(0).(i) <- 2)
        bad.Lcl.Labeling.half_labels.(0);
      Array.iter
        (fun e ->
          let u = Graph.edge_other_endpoint g e 0 in
          Lcl.Labeling.set_half bad g u e 1)
        (Graph.incident_edges g 0);
      check "sink rejected" false (Lcl.Problem.verify prob g bad)

let test_weak_2_coloring () =
  let prob = Lcl.Instances.weak_2_coloring in
  let g = Builders.complete_kary_tree 3 3 in
  check "solver valid" true (solver_produces_valid prob g)

(* ------------------------------------------------------------------ *)
(* Completion engine *)

let test_complete_extends_partial () =
  let prob = Lcl.Instances.coloring 3 in
  let g = Builders.cycle 6 in
  let partial = Lcl.Labeling.of_node_labels [| 1; 0; 0; 0; 0; 2 |] in
  match Lcl.Problem.complete prob g partial ~enforce:(fun _ -> true) with
  | None -> Alcotest.fail "completion exists"
  | Some l ->
      check "valid" true (Lcl.Problem.verify prob g l);
      check_int "pinned 0" 1 l.Lcl.Labeling.node_labels.(0);
      check_int "pinned 5" 2 l.Lcl.Labeling.node_labels.(5)

let test_complete_detects_infeasible () =
  let prob = Lcl.Instances.coloring 2 in
  let g = Builders.cycle 5 in
  check "odd cycle not 2-colorable" true
    (Lcl.Problem.complete prob g
       (Lcl.Labeling.create g ~use_halves:false)
       ~enforce:(fun _ -> true)
    = None)

let test_complete_respects_enforce () =
  (* Conflicting pinned labels at unenforced nodes are tolerated. *)
  let prob = Lcl.Instances.coloring 3 in
  let g = Builders.path 4 in
  let partial = Lcl.Labeling.of_node_labels [| 1; 1; 0; 0 |] in
  (* Node 0/1 conflict, but only nodes 2,3 are enforced. *)
  match Lcl.Problem.complete prob g partial ~enforce:(fun v -> v >= 2) with
  | None -> Alcotest.fail "completion with restricted enforcement exists"
  | Some l ->
      check "2 and 3 consistent" true
        (l.Lcl.Labeling.node_labels.(2) <> l.Lcl.Labeling.node_labels.(1)
        && l.Lcl.Labeling.node_labels.(2) <> l.Lcl.Labeling.node_labels.(3))

let test_complete_assignable () =
  let prob = Lcl.Instances.coloring 3 in
  let g = Builders.path 5 in
  let partial = Lcl.Labeling.of_node_labels [| 1; 0; 0; 0; 1 |] in
  match
    Lcl.Problem.complete prob g partial
      ~assignable:(fun v -> v <= 2)
      ~enforce:(fun v -> v <= 1)
  with
  | None -> Alcotest.fail "restricted completion exists"
  | Some l ->
      check "assigned inside zone" true (l.Lcl.Labeling.node_labels.(1) > 0);
      check_int "outside zone untouched" 0 l.Lcl.Labeling.node_labels.(3)

let test_half_edge_completion () =
  let prob = Lcl.Instances.edge_coloring 3 in
  let g = Builders.cycle 6 in
  match Lcl.Problem.solve_by_backtracking prob g with
  | None -> Alcotest.fail "even cycle is 2-edge-colorable, so 3 works"
  | Some l -> check "valid edge coloring" true (Lcl.Problem.verify prob g l)

let test_verify_locally_agrees () =
  let rng = Prng.create 29 in
  let graphs = [ Builders.cycle 30; Builders.grid 5 5; Builders.gnp rng 30 0.15 ] in
  List.iter
    (fun g ->
      let delta = max 2 (Graph.max_degree g) in
      List.iter
        (fun (_, prob) ->
          match prob.Lcl.Problem.solve g with
          | None -> ()
          | Some l ->
              check "local = global verification (valid)" true
                (Lcl.Problem.verify_locally prob g l
                = Lcl.Problem.verify prob g l))
        (Lcl.Instances.all_bounded_degree delta))
    graphs;
  (* A broken labeling must also be rejected locally. *)
  let g = Builders.cycle 8 in
  let bad = Lcl.Labeling.of_node_labels [| 1; 1; 2; 1; 2; 1; 2; 1 |] in
  check "local verification rejects conflicts" false
    (Lcl.Problem.verify_locally (Lcl.Instances.coloring 3) g bad)

let prop_backtracking_matches_solver =
  QCheck.Test.make
    ~name:"backtracking agrees with solvers about feasibility (3-coloring)"
    ~count:40
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
        Gen.(
          int_range 4 12 >>= fun n ->
          int_range 0 500 >>= fun seed -> return (n, seed)))
    (fun (n, seed) ->
      let g = Builders.gnp (Prng.create seed) n 0.4 in
      let prob = Lcl.Instances.coloring 3 in
      let via_graph = Coloring.backtracking g 3 <> None in
      let via_lcl = Lcl.Problem.solve_by_backtracking prob g <> None in
      via_graph = via_lcl)

let () =
  Alcotest.run "lcl"
    [
      ( "labeling",
        [
          Alcotest.test_case "halves" `Quick test_labeling_halves;
          Alcotest.test_case "copy" `Quick test_labeling_copy_independent;
          Alcotest.test_case "restrict" `Quick test_labeling_restrict;
        ] );
      ( "instances",
        [
          Alcotest.test_case "solvers valid" `Quick test_instance_solvers;
          Alcotest.test_case "coloring constraints" `Quick test_coloring_constraints;
          Alcotest.test_case "MIS constraints" `Quick test_mis_constraints;
          Alcotest.test_case "sinkless constraints" `Quick test_sinkless_constraints;
          Alcotest.test_case "weak 2-coloring" `Quick test_weak_2_coloring;
        ] );
      ( "completion",
        [
          Alcotest.test_case "extends partial" `Quick test_complete_extends_partial;
          Alcotest.test_case "detects infeasible" `Quick
            test_complete_detects_infeasible;
          Alcotest.test_case "respects enforce" `Quick test_complete_respects_enforce;
          Alcotest.test_case "respects assignable" `Quick test_complete_assignable;
          Alcotest.test_case "half-edge completion" `Quick test_half_edge_completion;
          Alcotest.test_case "local verification" `Quick test_verify_locally_agrees;
          QCheck_alcotest.to_alcotest prop_backtracking_matches_solver;
        ] );
    ]
