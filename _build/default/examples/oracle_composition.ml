(* The paper's running example of composability (Section 3.5), narrated.

   Problem Π: 2-color the edges of a bipartite even-degree graph red/blue
   so that every node sees equally many of each.  The paper decomposes it:

     Πv — 2-color the nodes          (hard: global without advice)
     Πo — balance-orient the edges   (hard: global without advice)
     Πe — given both, color red the edges oriented white -> black  (trivial)

   Each hard piece has a composable advice schema; Lemma 1 glues them.
   This example builds Π's schema with the generic `Advice.Pipeline`
   combinator from the two ingredient schemas, runs it on a torus, and
   verifies the result — the modularity that is the paper's "key
   technique".

     dune exec examples/oracle_composition.exe
*)

open Netgraph
open Schemas

let () =
  let g = Builders.torus 12 14 in
  Printf.printf "Graph: 12x14 torus (%d nodes, %d edges, all degrees 4)\n"
    (Graph.n g) (Graph.m g);

  (* Ingredient 1: Πo, the balanced-orientation schema (Section 5). *)
  let orientation_schema =
    {
      Advice.Pipeline.encode =
        (fun g ->
          (Balanced_orientation.encode g).Balanced_orientation.assignment);
      decode = (fun g a -> Balanced_orientation.decode g a);
    }
  in
  (* Ingredient 2: Πv, the 2-coloring beacon schema. *)
  let coloring_schema =
    {
      Advice.Pipeline.encode = (fun g -> Two_coloring.encode g);
      decode = (fun g a -> Two_coloring.decode g a);
    }
  in
  (* Lemma 1: compose.  Πe needs no advice of its own — it is a [map]. *)
  let splitting_schema =
    Advice.Pipeline.compose orientation_schema ~with_oracle:(fun orientation ->
        Advice.Pipeline.map
          (fun side g ->
            Array.init (Graph.m g) (fun e ->
                let u, v = Graph.edge_endpoints g e in
                let tail =
                  if Orientation.points_from orientation u v then u else v
                in
                if side.(tail) = 1 then 1 else 2))
          coloring_schema)
  in

  let advice = splitting_schema.Advice.Pipeline.encode g in
  Printf.printf "Composed advice: %d bits over %d holders (max %d bits/node)\n"
    (Advice.Assignment.total_bits advice)
    (Advice.Assignment.num_holders advice)
    (Advice.Assignment.max_bits advice);

  let colors = splitting_schema.Advice.Pipeline.decode g advice g in
  Printf.printf "Splitting valid (equal red/blue everywhere): %b\n"
    (Splitting.verify g colors);

  (* The same composition is what the library's Splitting module performs;
     both answers solve Π. *)
  let direct = Splitting.decode g (Splitting.encode g) in
  Printf.printf "Library's own Splitting module agrees it is solvable: %b\n"
    (Splitting.verify g direct);
  print_endline "oracle_composition: OK"
