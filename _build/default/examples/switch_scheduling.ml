(* Crossbar switch scheduling by recursive splitting (Section 5 extension).

   Scenario: an input-queued switch must partition a Δ-regular bipartite
   demand graph (inputs × outputs, one edge per requested cell) into Δ
   perfect matchings — one matching per time slot.  That is exactly
   Δ-edge-coloring; for Δ a power of two, the paper's recursive splitting
   schema solves it locally with a composable advice assignment.

     dune exec examples/switch_scheduling.exe
*)

open Netgraph
open Schemas

let () =
  let ports = 48 in
  let delta = 8 in
  let rng = Prng.create 2024 in
  let g = Builders.random_bipartite_regular rng ports delta in
  Printf.printf
    "Switch: %d input ports x %d output ports, %d-regular demand (%d cells)\n"
    ports ports delta (Graph.m g);

  let advice = Edge_coloring_pow2.encode g in
  Printf.printf "Advice: %d bits total over %d holders (max %d bits/node)\n"
    (Advice.Assignment.total_bits advice)
    (Advice.Assignment.num_holders advice)
    (Advice.Assignment.max_bits advice);

  let schedule = Edge_coloring_pow2.decode g advice in
  Printf.printf "Schedule valid (proper %d-edge-coloring): %b\n" delta
    (Edge_coloring_pow2.verify g schedule);

  (* Each color class is a perfect matching = one conflict-free slot. *)
  for slot = 1 to delta do
    let size =
      Array.fold_left
        (fun acc c -> if c = slot then acc + 1 else acc)
        0 schedule
    in
    Printf.printf "  slot %d: %d cells (perfect matching: %b)\n" slot size
      (size = ports)
  done;
  print_endline "switch_scheduling: OK"
