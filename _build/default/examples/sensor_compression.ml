(* Sensor ring-mesh link compression (Contribution 4).

   Scenario: sensors arranged on a ring, each linked to its four nearest
   ring neighbors (a circulant mesh).  Every node wants to persist which
   of its radio links are currently "active" in as little per-node flash
   as possible, such that any node can reconstruct its incident links
   locally after a reboot.

   The trivial format stores one bit per incident link: d bits at a
   degree-d node.  The paper's scheme stores an almost-balanced orientation
   (one advice bit per node) plus membership bits for *outgoing* links
   only: ⌈d/2⌉ + 1 bits — within 2 bits of the information-theoretic d/2
   floor.

     dune exec examples/sensor_compression.exe
*)

open Netgraph
open Schemas

let () =
  let n = 600 in
  let g = Builders.circulant n [ 1; 2 ] in
  let rng = Prng.create 7 in

  (* A random set of "active" links. *)
  let active = Bitset.create (Graph.m g) in
  Graph.iter_edges
    (fun e _ -> if Prng.float rng 1.0 < 0.35 then Bitset.add active e)
    g;
  Printf.printf "Mesh: circulant ring (%d nodes, %d links), %d active links\n"
    (Graph.n g) (Graph.m g) (Bitset.cardinal active);

  (* Compress. *)
  let compressed = Edge_compression.encode g active in
  let ours = Advice.Assignment.total_bits compressed in
  let trivial = Baselines.Trivial.edge_subset_encode g active in
  let trivial_bits = Advice.Assignment.total_bits trivial in
  let worst =
    Graph.fold_nodes
      (fun v acc -> max acc (String.length compressed.(v)))
      g 0
  in
  Printf.printf
    "Storage: ours %d bits total (max %d per node, bound ⌈d/2⌉+1 = %d); \
     trivial %d bits total (d = %d per node)\n"
    ours worst
    (Edge_compression.bits_bound (Graph.max_degree g))
    trivial_bits (Graph.max_degree g);

  (* Decompress and verify. *)
  let recovered = Edge_compression.decode g compressed in
  Printf.printf "Lossless: %b\n" (Bitset.equal active recovered);

  (* What a single rebooted sensor learns. *)
  let node = 123 in
  Printf.printf "Sensor %d recovers its links:" node;
  List.iter
    (fun (e, on) ->
      let u, v = Graph.edge_endpoints g e in
      Printf.printf " %d-%d:%s" u v (if on then "active" else "idle"))
    (Edge_compression.incident_memberships g compressed node);
  print_newline ();
  print_endline "sensor_compression: OK"
