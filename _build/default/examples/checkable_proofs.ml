(* Locally checkable proofs from advice (Section 1.2 application).

   The paper observes that a 1-bit advice schema for an LCL Π doubles as a
   locally checkable proof that Π is solvable: the prover publishes the
   advice, and the verifier (a) decodes a candidate solution with it and
   (b) checks Π's constraint in every local neighborhood.  Honest advice is
   always accepted; for a graph where Π has no solution, *no* advice can be
   accepted, because acceptance implies a feasible solution was exhibited.

   We demonstrate both directions, plus robustness to tampering: flipping
   advice bits either still decodes to a valid solution (accepted — fine,
   the proof only claims solvability) or is rejected by the verifier.

     dune exec examples/checkable_proofs.exe
*)

open Netgraph
open Schemas

let verify_with_advice problem g ones =
  (* The verifier: decode, then locally check.  Any failure rejects. *)
  match Subexp_lcl.decode_onebit problem g ones with
  | labeling -> Lcl.Problem.verify problem g labeling
  | exception Subexp_lcl.Encoding_failure _ -> false
  | exception Advice.Onebit.Conversion_failure _ -> false

let () =
  let problem = Lcl.Instances.coloring 3 in
  let g = Builders.cycle 500 in
  Printf.printf "Claim: %s is solvable on a %d-cycle\n"
    problem.Lcl.Problem.name (Graph.n g);

  (* Honest prover. *)
  let proof = Subexp_lcl.encode_onebit problem g in
  Printf.printf "Honest proof accepted: %b\n" (verify_with_advice problem g proof);

  (* Tampering: flip a sample of bits and watch the verifier. *)
  let rng = Prng.create 99 in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to 30 do
    let tampered = Bitset.copy proof in
    for _ = 1 to 3 do
      let v = Prng.int rng (Graph.n g) in
      Bitset.set tampered v (not (Bitset.mem tampered v))
    done;
    if verify_with_advice problem g tampered then incr accepted
    else incr rejected
  done;
  Printf.printf
    "Tampered proofs: %d still decoded to a valid 3-coloring, %d rejected \
     (both outcomes are sound: acceptance always exhibits a solution)\n"
    !accepted !rejected;

  (* An unsatisfiable claim: 2-coloring an odd cycle.  No advice exists —
     the honest prover fails, and the all-zeros / random proofs are
     rejected. *)
  let impossible = Lcl.Instances.coloring 2 in
  let odd = Builders.cycle 251 in
  (match Subexp_lcl.encode_onebit impossible odd with
  | _ -> print_endline "BUG: prover claimed 2-colorability of an odd cycle"
  | exception Subexp_lcl.Encoding_failure _ ->
      print_endline "Prover cannot construct a proof for a false claim: OK");
  let zeros = Bitset.create (Graph.n odd) in
  Printf.printf "All-zero proof of the false claim rejected: %b\n"
    (not (verify_with_advice impossible odd zeros));
  let random_proof = Bitset.create (Graph.n odd) in
  for v = 0 to Graph.n odd - 1 do
    if Prng.bool rng then Bitset.add random_proof v
  done;
  Printf.printf "Random proof of the false claim rejected: %b\n"
    (not (verify_with_advice impossible odd random_proof));
  print_endline "checkable_proofs: OK"
