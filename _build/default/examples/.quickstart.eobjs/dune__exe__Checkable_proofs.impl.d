examples/checkable_proofs.ml: Advice Bitset Builders Graph Lcl Netgraph Printf Prng Schemas Subexp_lcl
