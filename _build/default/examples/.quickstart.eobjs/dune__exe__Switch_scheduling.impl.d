examples/switch_scheduling.ml: Advice Array Builders Edge_coloring_pow2 Graph Netgraph Printf Prng Schemas
