examples/checkable_proofs.mli:
