examples/switch_scheduling.mli:
