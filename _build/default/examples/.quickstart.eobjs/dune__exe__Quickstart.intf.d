examples/quickstart.mli:
