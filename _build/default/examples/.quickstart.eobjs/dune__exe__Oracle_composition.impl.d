examples/oracle_composition.ml: Advice Array Balanced_orientation Builders Graph Netgraph Orientation Printf Schemas Splitting Two_coloring
