examples/sensor_compression.mli:
