examples/oracle_composition.mli:
