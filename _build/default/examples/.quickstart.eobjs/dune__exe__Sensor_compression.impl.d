examples/sensor_compression.ml: Advice Array Baselines Bitset Builders Edge_compression Graph List Netgraph Printf Prng Schemas String
