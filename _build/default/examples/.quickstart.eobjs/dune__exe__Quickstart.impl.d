examples/quickstart.ml: Array Baselines Bitset Builders Coloring Lcl Localmodel Netgraph Printf Prng Schemas
