(* Quickstart: 3-color a large cycle with one bit of advice per node.

   Without advice, 3-coloring a cycle takes Θ(log* n) rounds (Linial); the
   paper's Contribution 1 does it in O(1) rounds once an omniscient prover
   leaves a single bit at every node.  Run with:

     dune exec examples/quickstart.exe
*)

open Netgraph

let () =
  let n = 601 in
  let g = Builders.cycle n in
  let problem = Lcl.Instances.coloring 3 in

  Printf.printf "Graph: cycle on %d nodes, problem: %s\n" n
    problem.Lcl.Problem.name;

  (* The prover side: one bit per node. *)
  let ones = Schemas.Subexp_lcl.encode_onebit problem g in
  Printf.printf "Advice: 1 bit per node, %d ones among %d nodes (%.1f%%)\n"
    (Bitset.cardinal ones) n
    (100.0 *. float_of_int (Bitset.cardinal ones) /. float_of_int n);

  (* The distributed side: decode locally. *)
  let labeling = Schemas.Subexp_lcl.decode_onebit problem g ones in
  let colors = labeling.Lcl.Labeling.node_labels in
  Printf.printf "Decoded coloring proper: %b, colors used: %d\n"
    (Coloring.is_proper g colors)
    (Coloring.num_colors colors);

  (* Compare with the no-advice baseline. *)
  let succ = Array.init n (fun v -> (v + 1) mod n) in
  let ids = Localmodel.Ids.random_sparse (Prng.create 42) g in
  let _, rounds = Baselines.Cole_vishkin.run g ~succ ~ids in
  Printf.printf
    "Cole-Vishkin (no advice) used %d rounds; log* n = %d.  The advice \
     decoder's locality is a constant independent of n.\n"
    rounds
    (Baselines.Cole_vishkin.log_star n);

  print_endline "quickstart: OK"
