(* Table printing and timing helpers shared by the experiment harness. *)

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

let claim name ok =
  Printf.printf "[%s] %s\n" (if ok then "PASS" else "FAIL") name;
  ok

(* Wall-clock timing of a thunk, repeated to reach a minimal duration. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let time_median ?(repeats = 3) f =
  let times =
    List.init repeats (fun _ ->
        let _, t = time_once f in
        t)
  in
  let sorted = List.sort compare times in
  List.nth sorted (repeats / 2)

let ms t = t *. 1000.0

(* Global pass/fail accounting for the final summary. *)
let failures = ref []

let record name ok = if not (claim name ok) then failures := name :: !failures

let summary () =
  section "SUMMARY";
  match !failures with
  | [] -> print_endline "All experiment claims hold."
  | fs ->
      Printf.printf "%d claim(s) FAILED:\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  - %s\n" f) (List.rev fs)
