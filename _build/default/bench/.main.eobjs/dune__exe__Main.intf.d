bench/main.mli:
