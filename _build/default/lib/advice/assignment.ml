open Netgraph

type t = string array

let empty g = Array.make (Graph.n g) ""

let is_wellformed a =
  Array.for_all (fun s -> String.for_all (fun c -> c = '0' || c = '1') s) a

let max_bits a = Array.fold_left (fun acc s -> max acc (String.length s)) 0 a

let total_bits a = Array.fold_left (fun acc s -> acc + String.length s) 0 a

let holders a =
  let acc = ref [] in
  Array.iteri (fun v s -> if String.length s > 0 then acc := v :: !acc) a;
  List.rev !acc

let num_holders a = List.length (holders a)

let holders_in_ball g a ~center ~radius =
  List.fold_left
    (fun acc v -> if String.length a.(v) > 0 then acc + 1 else acc)
    0
    (Traversal.ball g center radius)

let max_holders_per_ball g a ~radius =
  Graph.fold_nodes
    (fun v acc -> max acc (holders_in_ball g a ~center:v ~radius))
    g 0

let is_uniform_one_bit a = Array.for_all (fun s -> String.length s = 1) a

let ones a = Array.fold_left (fun acc s -> if String.contains s '1' then acc + 1 else acc) 0 a

let sparsity a =
  if not (is_uniform_one_bit a) then
    invalid_arg "Assignment.sparsity: not a uniform 1-bit assignment";
  if Array.length a = 0 then 0.0
  else float_of_int (ones a) /. float_of_int (Array.length a)

let of_bitset bits =
  Array.init (Bitset.length bits) (fun v ->
      if Bitset.mem bits v then "1" else "0")

let to_bitset a =
  if not (is_uniform_one_bit a) then
    invalid_arg "Assignment.to_bitset: not a uniform 1-bit assignment";
  let b = Bitset.create (Array.length a) in
  Array.iteri (fun v s -> if s = "1" then Bitset.add b v) a;
  b

let concat_map2 a b f =
  if Array.length a <> Array.length b then
    invalid_arg "Assignment.concat_map2: length mismatch";
  Array.init (Array.length a) (fun v -> f a.(v) b.(v))

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun v s -> if s <> "" then Format.fprintf fmt "%d: %s@," v s)
    a;
  Format.fprintf fmt "@]"
