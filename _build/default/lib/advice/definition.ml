let respects_beta a ~beta = Assignment.max_bits a <= beta

let is_uniform_fixed_length a =
  match Array.length a with
  | 0 -> true
  | _ ->
      let len = String.length a.(0) in
      Array.for_all (fun s -> String.length s = len) a

let is_subset_fixed_length a =
  let holder_lengths =
    Array.to_list a
    |> List.filter_map (fun s ->
           if String.length s > 0 then Some (String.length s) else None)
  in
  match holder_lengths with
  | [] -> true
  | l :: rest -> List.for_all (fun l' -> l' = l) rest

let is_epsilon_sparse a ~epsilon =
  Assignment.is_uniform_one_bit a && Assignment.sparsity a <= epsilon

type compliance = {
  alpha : int;
  gamma_measured : int;
  beta_measured : int;
  beta_allowed : float;
  ok : bool;
}

let composability g a ~c ~gamma ~alpha =
  let gamma_measured = Assignment.max_holders_per_ball g a ~radius:alpha in
  let beta_measured = Assignment.max_bits a in
  let beta_allowed =
    c *. float_of_int alpha /. (float_of_int gamma ** 3.0)
  in
  {
    alpha;
    gamma_measured;
    beta_measured;
    beta_allowed;
    ok = gamma_measured <= gamma && float_of_int beta_measured <= beta_allowed;
  }

let pp_compliance fmt r =
  Format.fprintf fmt
    "alpha=%d gamma<=%d (measured) beta=%d (allowed %.1f) -> %s" r.alpha
    r.gamma_measured r.beta_measured r.beta_allowed
    (if r.ok then "composable" else "VIOLATION")
