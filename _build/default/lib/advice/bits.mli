(** Fixed-width binary codecs for advice payloads. *)

val width_for : int -> int
(** [width_for k] is the number of bits needed to represent values
    [0 .. k-1]; at least 1. *)

val encode : width:int -> int -> string
(** Big-endian fixed-width binary.  @raise Invalid_argument when the value
    does not fit. *)

val decode : string -> int
(** @raise Invalid_argument on the empty string or non-bit characters. *)

val encode_int : int -> string
(** Minimal-width encoding of a non-negative integer. *)
