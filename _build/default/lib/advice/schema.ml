type stats = {
  n : int;
  max_bits : int;
  total_bits : int;
  holders : int;
  ones : int;
  sparsity : float option;
  max_holders_ball : int option;
}

let measure ?ball_radius g a =
  {
    n = Netgraph.Graph.n g;
    max_bits = Assignment.max_bits a;
    total_bits = Assignment.total_bits a;
    holders = Assignment.num_holders a;
    ones = Assignment.ones a;
    sparsity =
      (if Assignment.is_uniform_one_bit a then Some (Assignment.sparsity a)
       else None);
    max_holders_ball =
      Option.map (fun r -> Assignment.max_holders_per_ball g a ~radius:r) ball_radius;
  }

let pp fmt s =
  Format.fprintf fmt
    "n=%d max_bits=%d total_bits=%d holders=%d ones=%d%a%a" s.n s.max_bits
    s.total_bits s.holders s.ones
    (fun fmt -> function
      | None -> ()
      | Some x -> Format.fprintf fmt " sparsity=%.4f" x)
    s.sparsity
    (fun fmt -> function
      | None -> ()
      | Some x -> Format.fprintf fmt " gamma=%d" x)
    s.max_holders_ball
