let width_for k =
  let rec go w cap = if cap >= k then w else go (w + 1) (cap * 2) in
  go 1 2

let encode ~width value =
  if value < 0 || (width < 63 && value >= 1 lsl width) then
    invalid_arg "Bits.encode: value does not fit";
  String.init width (fun i ->
      if value land (1 lsl (width - 1 - i)) <> 0 then '1' else '0')

let decode s =
  if s = "" then invalid_arg "Bits.decode: empty";
  String.fold_left
    (fun acc c ->
      match c with
      | '0' -> 2 * acc
      | '1' -> (2 * acc) + 1
      | _ -> invalid_arg "Bits.decode: not a bit string")
    0 s

let encode_int value =
  if value < 0 then invalid_arg "Bits.encode_int";
  encode ~width:(width_for (value + 1)) value
