lib/advice/definition.mli: Assignment Format Netgraph
