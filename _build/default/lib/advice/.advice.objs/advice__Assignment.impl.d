lib/advice/assignment.ml: Array Bitset Format Graph List Netgraph String Traversal
