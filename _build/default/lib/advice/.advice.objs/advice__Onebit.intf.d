lib/advice/onebit.mli: Assignment Netgraph
