lib/advice/composable.mli: Assignment
