lib/advice/onebit.ml: Array Assignment Bitset Buffer Format Graph List Netgraph Queue String Traversal
