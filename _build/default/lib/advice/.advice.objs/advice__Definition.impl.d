lib/advice/definition.ml: Array Assignment Format List String
