lib/advice/composable.ml: Array Assignment List String
