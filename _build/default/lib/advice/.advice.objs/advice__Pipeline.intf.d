lib/advice/pipeline.mli: Assignment Netgraph
