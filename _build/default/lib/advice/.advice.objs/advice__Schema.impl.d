lib/advice/schema.ml: Assignment Format Netgraph Option
