lib/advice/bits.mli:
