lib/advice/bits.ml: String
