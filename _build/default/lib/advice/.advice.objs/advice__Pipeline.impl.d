lib/advice/pipeline.ml: Assignment Composable Netgraph
