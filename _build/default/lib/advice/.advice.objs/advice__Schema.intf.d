lib/advice/schema.mli: Assignment Format Netgraph
