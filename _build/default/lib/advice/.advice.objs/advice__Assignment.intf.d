lib/advice/assignment.mli: Format Netgraph
