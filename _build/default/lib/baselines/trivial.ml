open Netgraph

let coloring_encode k colors =
  let width = Advice.Bits.width_for k in
  Array.map (fun c -> Advice.Bits.encode ~width (c - 1)) colors

let coloring_decode k assignment =
  let width = Advice.Bits.width_for k in
  Array.map
    (fun s ->
      if String.length s <> width then
        invalid_arg "Trivial.coloring_decode: wrong width";
      Advice.Bits.decode s + 1)
    assignment

let edge_subset_encode g x =
  Array.init (Graph.n g) (fun v ->
      Array.to_list (Graph.incident_edges g v)
      |> List.map (fun e -> if Bitset.mem x e then "1" else "0")
      |> String.concat "")

let edge_subset_decode g assignment =
  let x = Bitset.create (Graph.m g) in
  Graph.iter_nodes
    (fun v ->
      let s = assignment.(v) in
      if String.length s <> Graph.degree g v then
        invalid_arg "Trivial.edge_subset_decode: wrong width";
      Array.iteri
        (fun i e -> if s.[i] = '1' then Bitset.add x e)
        (Graph.incident_edges g v))
    g;
  x

let orientation_encode o =
  let g = Orientation.graph o in
  Array.init (Graph.n g) (fun v ->
      Array.to_list (Graph.neighbors g v)
      |> List.map (fun u -> if Orientation.points_from o v u then "1" else "0")
      |> String.concat "")

let orientation_decode g assignment =
  let o = Orientation.create g in
  Graph.iter_nodes
    (fun v ->
      let s = assignment.(v) in
      Array.iteri
        (fun i u -> if s.[i] = '1' then Orientation.orient o v u)
        (Graph.neighbors g v))
    g;
  o
