lib/baselines/trivial.mli: Advice Netgraph
