lib/baselines/cole_vishkin.mli: Localmodel Netgraph
