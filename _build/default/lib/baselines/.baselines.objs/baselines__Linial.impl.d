lib/baselines/linial.ml: Array Coloring Graph Netgraph
