lib/baselines/trivial.ml: Advice Array Bitset Graph List Netgraph Orientation String
