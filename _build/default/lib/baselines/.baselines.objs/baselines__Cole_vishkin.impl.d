lib/baselines/cole_vishkin.ml: Array Graph Netgraph
