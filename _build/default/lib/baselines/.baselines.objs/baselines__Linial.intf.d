lib/baselines/linial.mli: Netgraph
