(** Cole–Vishkin 3-coloring of oriented cycles: the classical no-advice
    baseline.

    Takes Θ(log* n) communication rounds (and this is optimal by Linial's
    lower bound, the bound (Fraigniaud et al. 2009) studied breaking with
    advice).  Experiment E9 contrasts its round count against the O(1)
    locality of the advice schemas. *)

val run : Netgraph.Graph.t -> succ:int array -> ids:Localmodel.Ids.t -> int array * int
(** [run g ~succ ~ids] 3-colors an oriented cycle ([succ] maps every node
    to its successor) and returns (colors in 1..3, rounds used).  Rounds
    count one per Cole–Vishkin bit-reduction step plus one per final
    shift-and-recolor phase. *)

val log_star : int -> int
(** Iterated logarithm (base 2), for reporting. *)
