open Netgraph

let log_star n =
  let rec go n acc = if n <= 1 then acc else go (int_of_float (log (float_of_int n) /. log 2.0)) (acc + 1) in
  go n 0

(* Lowest bit position where a and b differ. *)
let first_difference a b =
  let x = a lxor b in
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  if x = 0 then invalid_arg "Cole_vishkin: equal colors" else go 0 x

let bits_needed c =
  let rec go w = if 1 lsl w > c then w else go (w + 1) in
  go 1

let run g ~succ ~ids =
  let n = Graph.n g in
  if n < 3 then invalid_arg "Cole_vishkin.run: cycle of length >= 3";
  Array.iteri
    (fun v s ->
      if not (Graph.is_edge g v s) then
        invalid_arg "Cole_vishkin.run: succ is not along edges")
    succ;
  let colors = Array.map (fun id -> id - 1) ids in
  let rounds = ref 0 in
  (* Bit-reduction: new color = 2 * (index of first differing bit with the
     successor) + (own bit there).  One communication round per step. *)
  let palette = ref (Array.fold_left max 0 colors + 1) in
  while !palette > 6 do
    incr rounds;
    let next =
      Array.init n (fun v ->
          let i = first_difference colors.(v) colors.(succ.(v)) in
          (2 * i) + ((colors.(v) lsr i) land 1))
    in
    Array.blit next 0 colors 0 n;
    palette := 2 * bits_needed (!palette - 1)
  done;
  (* Eliminate colors 5, 4, 3 (0-based) by shift-down then recolor. *)
  let pred = Array.make n 0 in
  Array.iteri (fun v s -> pred.(s) <- v) succ;
  for c = 5 downto 3 do
    incr rounds;
    (* Shift: everyone adopts the successor's color. *)
    let shifted = Array.init n (fun v -> colors.(succ.(v))) in
    Array.blit shifted 0 colors 0 n;
    incr rounds;
    (* Nodes of color c form an independent set: recolor greedily in
       {0,1,2}. *)
    for v = 0 to n - 1 do
      if colors.(v) = c then begin
        let a = colors.(pred.(v)) and b = colors.(succ.(v)) in
        let rec least x = if x = a || x = b then least (x + 1) else x in
        colors.(v) <- least 0
      end
    done
  done;
  (Array.map (fun c -> c + 1) colors, !rounds)
