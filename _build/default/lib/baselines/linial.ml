open Netgraph

let is_prime x =
  if x < 2 then false
  else begin
    let rec go d = d * d > x || (x mod d <> 0 && go (d + 1)) in
    go 2
  end

let smallest_prime_from x =
  let rec go x = if is_prime x then x else go (x + 1) in
  go (max 2 x)

(* Base-q digits of [c], least significant first, padded to k+1 entries:
   the coefficients of the polynomial associated with color c. *)
let digits q k c =
  Array.init (k + 1) (fun i ->
      let rec nth i c = if i = 0 then c mod q else nth (i - 1) (c / q) in
      nth i c)

let eval q coeffs x =
  Array.fold_right (fun a acc -> ((acc * x) + a) mod q) coeffs 0

let reduce_step g coloring =
  let delta = max 1 (Graph.max_degree g) in
  let palette = Coloring.num_colors coloring in
  (* Smallest k and prime q with q > k * delta and q^(k+1) >= palette. *)
  let rec choose k =
    let q = smallest_prime_from ((k * delta) + 1) in
    let rec power acc i = if i > k then acc else power (acc * q) (i + 1) in
    if power 1 1 >= palette then (k, q) else choose (k + 1)
  in
  let k, q = choose 1 in
  Array.init (Graph.n g) (fun v ->
      let own = digits q k (coloring.(v) - 1) in
      let neighbor_polys =
        Array.map (fun u -> digits q k (coloring.(u) - 1)) (Graph.neighbors g v)
      in
      let rec find x =
        if x >= q then invalid_arg "Linial.reduce_step: no free point (improper input?)"
        else if
          Array.for_all (fun p -> eval q p x <> eval q own x) neighbor_polys
        then x
        else find (x + 1)
      in
      let x = find 0 in
      (x * q) + eval q own x + 1)

let reduce g coloring =
  let rec go current rounds =
    let next = reduce_step g current in
    if Coloring.num_colors next >= Coloring.num_colors current then
      (current, rounds)
    else go next (rounds + 1)
  in
  go coloring 0
