(** Trivial advice schemas — the comparison points the paper starts from.

    A problem whose solution can be written directly into the advice is
    solvable with zero rounds and as many bits as the solution needs; the
    paper's question is how far below that one can go.  These encoders
    quantify the baseline costs: ⌈log k⌉ bits/node for k-coloring, d
    bits/node for edge subsets, d bits/node for orientations. *)

val coloring_encode : int -> int array -> Advice.Assignment.t
(** [coloring_encode k colors]: each node stores its own color in
    ⌈log₂ k⌉ bits. *)

val coloring_decode : int -> Advice.Assignment.t -> int array

val edge_subset_encode : Netgraph.Graph.t -> Netgraph.Bitset.t -> Advice.Assignment.t
(** Each node stores one membership bit per incident edge: d bits at a
    degree-d node — the bound Contribution 4 halves. *)

val edge_subset_decode : Netgraph.Graph.t -> Advice.Assignment.t -> Netgraph.Bitset.t

val orientation_encode : Netgraph.Orientation.t -> Advice.Assignment.t
(** Each node stores one direction bit per incident edge. *)

val orientation_decode :
  Netgraph.Graph.t -> Advice.Assignment.t -> Netgraph.Orientation.t
