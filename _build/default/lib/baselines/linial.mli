(** Linial-style color reduction via polynomial cover-free families.

    One round reduces a proper [C]-coloring to q² colors, where q is a
    prime with q > kΔ and k = ⌈log_q C⌉: node colors are read as degree-k
    polynomials over F_q; a node picks an evaluation point where it
    disagrees with all neighbors (two distinct degree-k polynomials agree
    on at most k points, and kΔ < q guarantees a free point).  Iterating
    reaches an O(Δ² log² Δ)-size palette in O(log* C) rounds — the engine
    behind stage 1 color reductions in Section 6 of the paper. *)

val reduce_step : Netgraph.Graph.t -> int array -> int array
(** One reduction round; input must be a proper coloring. *)

val reduce : Netgraph.Graph.t -> int array -> int array * int
(** Iterate until the palette stops shrinking; returns (coloring, rounds). *)

val smallest_prime_from : int -> int
(** Smallest prime [>= x]; exposed for tests. *)
