open Netgraph

type t = {
  node_labels : int array;
  half_labels : int array array;
}

let create g ~use_halves =
  {
    node_labels = Array.make (Graph.n g) 0;
    half_labels =
      (if use_halves then
         Array.init (Graph.n g) (fun v -> Array.make (Graph.degree g v) 0)
       else Array.make (Graph.n g) [||]);
  }

let of_node_labels labels =
  {
    node_labels = Array.copy labels;
    half_labels = Array.make (Array.length labels) [||];
  }

let copy l =
  {
    node_labels = Array.copy l.node_labels;
    half_labels = Array.map Array.copy l.half_labels;
  }

let half_slot g v e =
  let inc = Graph.incident_edges g v in
  let rec find i =
    if i >= Array.length inc then
      invalid_arg "Labeling.half_slot: edge not incident"
    else if inc.(i) = e then i
    else find (i + 1)
  in
  find 0

let get_half l g v e = l.half_labels.(v).(half_slot g v e)

let set_half l g v e label = l.half_labels.(v).(half_slot g v e) <- label

let get_half_other l g v e =
  let u = Graph.edge_other_endpoint g e v in
  get_half l g u e

let uses_halves l = Array.exists (fun a -> Array.length a > 0) l.half_labels

let equal a b =
  a.node_labels = b.node_labels && a.half_labels = b.half_labels

let restrict l g ~sub ~to_global =
  let nv = Graph.n sub in
  let node_labels = Array.init nv (fun i -> l.node_labels.(to_global.(i))) in
  let half_labels =
    Array.init nv (fun i ->
        let v = to_global.(i) in
        if Array.length l.half_labels.(v) = 0 then [||]
        else
          Array.map
            (fun e_sub ->
              let a, b = Graph.edge_endpoints sub e_sub in
              let ga = to_global.(a) and gb = to_global.(b) in
              let e = Graph.edge_id g ga gb in
              get_half l g v e)
            (Graph.incident_edges sub i))
  in
  { node_labels; half_labels }
