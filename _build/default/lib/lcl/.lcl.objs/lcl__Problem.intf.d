lib/lcl/problem.mli: Labeling Netgraph
