lib/lcl/labeling.ml: Array Graph Netgraph
