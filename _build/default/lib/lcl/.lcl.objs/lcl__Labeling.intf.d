lib/lcl/labeling.mli: Netgraph
