lib/lcl/instances.mli: Problem
