lib/lcl/problem.ml: Array Graph Labeling List Netgraph Queue Traversal
