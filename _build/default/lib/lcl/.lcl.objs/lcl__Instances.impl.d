lib/lcl/instances.ml: Array Bitset Coloring Degeneracy Graph Hashtbl Labeling List Netgraph Option Orientation Printf Problem Ruling Traversal
