open Netgraph

type t = {
  name : string;
  node_alphabet : int;
  half_alphabet : int;
  radius : int;
  valid_at : Graph.t -> Labeling.t -> int -> bool;
  prune_at : Graph.t -> Labeling.t -> int -> bool;
  node_value_order : int list;
  solve : Graph.t -> Labeling.t option;
}

let assigned_in_range prob g l =
  let node_ok =
    prob.node_alphabet = 0
    || Array.for_all
         (fun x -> x >= 1 && x <= prob.node_alphabet)
         l.Labeling.node_labels
  in
  let half_ok =
    prob.half_alphabet = 0
    || Graph.fold_nodes
         (fun v acc ->
           acc
           && Array.length l.Labeling.half_labels.(v) = Graph.degree g v
           && Array.for_all
                (fun x -> x >= 1 && x <= prob.half_alphabet)
                l.Labeling.half_labels.(v))
         g true
  in
  node_ok && half_ok

let verify prob g l =
  assigned_in_range prob g l
  && Graph.fold_nodes (fun v acc -> acc && prob.valid_at g l v) g true

let verify_locally prob g l =
  assigned_in_range prob g l
  && Graph.fold_nodes
       (fun v acc ->
         acc
         &&
         (* Order-preserving fragment of the node's checkability ball. *)
         let ball = List.sort compare (Traversal.ball g v prob.radius) in
         let sub, to_sub, to_global = Graph.induced g ball in
         let l_sub = Labeling.restrict l g ~sub ~to_global in
         prob.valid_at sub l_sub to_sub.(v))
       g true

(* Identify assignable slots with small integers:
   node slot of v            -> v
   half slot i of node v     -> n + half_offset.(v) + i *)
let complete ?(assignable = fun _ -> true) prob g partial ~enforce =
  let n = Graph.n g in
  let l = Labeling.copy partial in
  (* Materialize half arrays when the problem uses them. *)
  if prob.half_alphabet > 0 then
    Graph.iter_nodes
      (fun v ->
        if Array.length l.Labeling.half_labels.(v) <> Graph.degree g v then
          l.Labeling.half_labels.(v) <- Array.make (Graph.degree g v) 0)
      g;
  let half_offset = Array.make n 0 in
  let total_half = ref 0 in
  if prob.half_alphabet > 0 then
    Graph.iter_nodes
      (fun v ->
        half_offset.(v) <- !total_half;
        total_half := !total_half + Graph.degree g v)
      g;
  let num_slots = n + !total_half in
  let slot_owner = Array.make num_slots 0 in
  for v = 0 to n - 1 do
    slot_owner.(v) <- v
  done;
  if prob.half_alphabet > 0 then
    Graph.iter_nodes
      (fun v ->
        for i = 0 to Graph.degree g v - 1 do
          slot_owner.(n + half_offset.(v) + i) <- v
        done)
      g;
  let set_slot s value =
    let v = slot_owner.(s) in
    if s < n then l.Labeling.node_labels.(s) <- value
    else l.Labeling.half_labels.(v).(s - n - half_offset.(v)) <- value
  in
  let slot_is_free s =
    let v = slot_owner.(s) in
    assignable v
    &&
    if s < n then prob.node_alphabet > 0 && l.Labeling.node_labels.(s) = 0
    else l.Labeling.half_labels.(v).(s - n - half_offset.(v)) = 0
  in
  let free_slots =
    let acc = ref [] in
    for s = num_slots - 1 downto 0 do
      if s < n then begin
        if prob.node_alphabet > 0 && slot_is_free s then acc := s :: !acc
      end
      else if slot_is_free s then acc := s :: !acc
    done;
    Array.of_list !acc
  in
  (* Order slots so that checkability balls fill up early: breadth-first
     over the assignable region (seeded at its least node, restarting for
     disconnected pieces).  Constraints then fire as soon as possible,
     which is what makes the backtracking completion practical. *)
  let free_slots =
    let seen = Array.make n false in
    let order = ref [] in
    let queue = Queue.create () in
    let bfs_from s =
      seen.(s) <- true;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        order := v :: !order;
        Array.iter
          (fun u ->
            if assignable u && not seen.(u) then begin
              seen.(u) <- true;
              Queue.add u queue
            end)
          (Graph.neighbors g v)
      done
    in
    for v = 0 to n - 1 do
      if assignable v && not seen.(v) then bfs_from v
    done;
    let node_rank = Array.make n max_int in
    List.iteri (fun i v -> node_rank.(v) <- i) (List.rev !order);
    let rank s = (node_rank.(slot_owner.(s)), s) in
    let sorted = Array.copy free_slots in
    Array.sort (fun a b -> compare (rank a) (rank b)) sorted;
    sorted
  in
  (* Watchers: enforced nodes whose radius ball contains the slot owner. *)
  let enforced = List.filter enforce (List.init n (fun v -> v)) in
  let slots_of_node v =
    let node_slot = if prob.node_alphabet > 0 then [ v ] else [] in
    let halves =
      if prob.half_alphabet > 0 then
        List.init (Graph.degree g v) (fun i -> n + half_offset.(v) + i)
      else []
    in
    node_slot @ halves
  in
  let watchers = Array.make num_slots [] in
  let pending = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun w ->
          List.iter
            (fun s ->
              if slot_is_free s then begin
                watchers.(s) <- u :: watchers.(s);
                pending.(u) <- pending.(u) + 1
              end)
            (slots_of_node w))
        (Traversal.ball g u prob.radius))
    enforced;
  let initial_ok =
    List.for_all
      (fun u ->
        prob.prune_at g l u && (pending.(u) > 0 || prob.valid_at g l u))
      enforced
  in
  let ascending alphabet = List.init alphabet (fun i -> i + 1) in
  let slot_values s =
    if s < n then
      match prob.node_value_order with
      | [] -> ascending prob.node_alphabet
      | order -> order
    else ascending prob.half_alphabet
  in
  let num_free = Array.length free_slots in
  let rec solve k =
    if k = num_free then true
    else begin
      let s = free_slots.(k) in
      List.iter (fun u -> pending.(u) <- pending.(u) - 1) watchers.(s);
      let rec try_values = function
        | [] -> false
        | value :: rest ->
            set_slot s value;
            let ok =
              List.for_all
                (fun u ->
                  prob.prune_at g l u
                  && (pending.(u) > 0 || prob.valid_at g l u))
                watchers.(s)
            in
            if ok && solve (k + 1) then true
            else begin
              set_slot s 0;
              try_values rest
            end
      in
      if try_values (slot_values s) then true
      else begin
        List.iter (fun u -> pending.(u) <- pending.(u) + 1) watchers.(s);
        false
      end
    end
  in
  if initial_ok && solve 0 then Some l else None

let solve_by_backtracking prob g =
  complete prob g
    (Labeling.create g ~use_halves:(prob.half_alphabet > 0))
    ~enforce:(fun _ -> true)
