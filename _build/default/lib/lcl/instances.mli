(** Concrete LCL problems.

    The classical problems Section 1.2 of the paper lists as LCLs on
    bounded-degree graphs.  Each instance bundles the local constraint with
    a centralized feasibility solver used on the prover side. *)

val coloring : int -> Problem.t
(** Proper vertex [k]-coloring (node labels 1..k, radius 1).  [solve] is
    greedy when [k > Δ], exact backtracking otherwise. *)

val mis : Problem.t
(** Maximal independent set: label 2 = member, 1 = non-member; members are
    pairwise non-adjacent and every non-member has a member neighbor. *)

val maximal_matching : Problem.t
(** Half-edge labels 1 = matched, 2 = unmatched: the two halves of an edge
    agree, a node has at most one matched edge, and an unmatched edge has a
    saturated endpoint. *)

val sinkless_orientation : Problem.t
(** Half-edge labels 1 = out, 2 = in: edge halves are complementary and
    every node of degree at least 3 has an outgoing edge. *)

val edge_coloring : int -> Problem.t
(** Proper [k]-edge-coloring via agreeing half labels. *)

val weak_2_coloring : Problem.t
(** Labels {1,2}; every non-isolated node has a neighbor of the other
    label. *)

val defective_coloring : colors:int -> defect:int -> Problem.t
(** Labels 1..colors; every node has at most [defect] same-labeled
    neighbors.  Solvable greedily whenever
    [colors >= Δ / (defect + 1) + 1]. *)

val bounded_outdegree_orientation : int -> Problem.t
(** Half-edge labels 1 = out / 2 = in, complementary across each edge,
    with out-degree at most [k].  Solvable iff the graph has
    pseudoarboricity at most [k]; the solver uses the smallest-last
    (degeneracy) orientation and falls back to backtracking. *)

val forbidden_color_coloring : int -> forbidden:int array -> Problem.t
(** Proper [k]-coloring where node [v] must additionally avoid the input
    label [forbidden.(v)] (0 = no restriction) — an input-labeled LCL in
    the sense of Σin.  The input is captured in the problem instance, so
    the whole advice pipeline applies unchanged. *)

val minimal_dominating_set : Problem.t
(** Labels 2 = in the set, 1 = out: every node is dominated (itself or a
    neighbor in the set) and every member has a private node (itself or a
    neighbor dominated by no one else) — minimality, checkable at radius
    2.  Solved by a greedy MIS, which is always minimal dominating. *)

val all_bounded_degree : int -> (string * Problem.t) list
(** The standard battery for degree bound Δ: coloring (Δ+1), MIS, maximal
    matching, sinkless orientation, edge coloring (2Δ-1); used by test
    sweeps. *)
