(** Locally checkable labeling problems.

    An LCL is a tuple (Σin, Σout, C, r): finite output alphabet(s), a
    checkability radius [r], and a constraint that every node can verify by
    inspecting its radius-[r] neighborhood (Section 3.3 of the paper).  We
    represent the constraint extensionally as a predicate [valid_at] and
    carry a centralized feasibility solver used by advice encoders (the
    prover is allowed unbounded computation). *)

type t = {
  name : string;
  node_alphabet : int;  (** node labels range over 1..node_alphabet; 0 = node labels unused *)
  half_alphabet : int;  (** half-edge labels range over 1..half_alphabet; 0 = unused *)
  radius : int;  (** checkability radius r *)
  valid_at : Netgraph.Graph.t -> Labeling.t -> int -> bool;
      (** Constraint at one node, assuming every label within distance
          [radius] of the node is assigned. *)
  prune_at : Netgraph.Graph.t -> Labeling.t -> int -> bool;
      (** Monotone partial check: [false] means no completion of the
          current partial labeling can satisfy [valid_at] here.  Used by
          the backtracking solver; [(fun _ _ _ -> true)] is always safe. *)
  node_value_order : int list;
      (** Preference order in which the backtracking solver tries node
          labels ([[]] = ascending).  For problems whose constraints only
          bite once a neighborhood is complete (MIS, domination), trying
          the "in the set" label first turns the search greedy-like. *)
  solve : Netgraph.Graph.t -> Labeling.t option;
      (** Centralized: some valid solution, or [None] if infeasible. *)
}

val verify : t -> Netgraph.Graph.t -> Labeling.t -> bool
(** All labels assigned in range, and [valid_at] holds at every node. *)

val verify_locally : t -> Netgraph.Graph.t -> Labeling.t -> bool
(** Equivalent to {!verify}, but executed the way the LOCAL model would:
    every node restricts the labeling to its own radius-[r] ball fragment
    and evaluates the constraint there — demonstrating that the problem is
    indeed locally checkable (the defining property of LCLs). *)

val assigned_in_range : t -> Netgraph.Graph.t -> Labeling.t -> bool

val complete :
  ?assignable:(int -> bool) ->
  t ->
  Netgraph.Graph.t ->
  Labeling.t ->
  enforce:(int -> bool) ->
  Labeling.t option
(** Backtracking completion of a partial labeling (labels [0] are free):
    find an extension such that [valid_at] holds at every node selected by
    [enforce] — other nodes' constraints are deliberately not checked (they
    belong to a different cluster in the Section-4 decoding, or their ball
    leaves the fragment).  [assignable] restricts which nodes' free slots
    the search may fill (default: all); slots of other nodes stay
    unassigned.  Exponential in the number of free labels; meant for
    cluster-sized fragments. *)

val solve_by_backtracking : t -> Netgraph.Graph.t -> Labeling.t option
(** [complete] from the empty labeling enforcing everything — a generic
    [solve] for small graphs. *)
