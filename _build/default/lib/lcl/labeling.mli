(** Labelings of graphs, the outputs of LCL problems.

    Following Naor–Stockmeyer (and Section 3.3 of the paper), an LCL
    solution labels node–edge pairs; many classical problems only use node
    labels.  A labeling carries both: a label per node and a label per
    *half-edge* (node, incident-edge slot).  Label [0] means "unassigned";
    real labels are positive. *)

type t = {
  node_labels : int array;
  half_labels : int array array;
      (** [half_labels.(v).(i)] labels the pair (v, i-th incident edge of
          v) in sorted-neighbor order; empty arrays when unused. *)
}

val create : Netgraph.Graph.t -> use_halves:bool -> t
(** All labels unassigned. *)

val of_node_labels : int array -> t

val copy : t -> t

val half_slot : Netgraph.Graph.t -> int -> int -> int
(** [half_slot g v e] is the incident slot of edge [e] at node [v]. *)

val get_half : t -> Netgraph.Graph.t -> int -> int -> int
(** [get_half l g v e] is the label of pair (v, e). *)

val set_half : t -> Netgraph.Graph.t -> int -> int -> int -> unit

val get_half_other : t -> Netgraph.Graph.t -> int -> int -> int
(** Label the *other* endpoint of [e] gives to [e]. *)

val uses_halves : t -> bool

val equal : t -> t -> bool

val restrict :
  t -> Netgraph.Graph.t -> sub:Netgraph.Graph.t -> to_global:int array -> t
(** Pull a labeling back onto an induced subgraph (shared edges keep their
    labels; half labels for edges absent from the subgraph are dropped). *)
