open Netgraph

let always_true _ _ _ = true

(* ------------------------------------------------------------------ *)
(* Vertex coloring *)

let coloring k =
  if k < 1 then invalid_arg "Instances.coloring";
  let no_conflict g (l : Labeling.t) v =
    let cv = l.Labeling.node_labels.(v) in
    cv = 0
    || Array.for_all
         (fun u ->
           let cu = l.Labeling.node_labels.(u) in
           cu = 0 || cu <> cv)
         (Graph.neighbors g v)
  in
  let valid_at g (l : Labeling.t) v =
    let cv = l.Labeling.node_labels.(v) in
    cv >= 1 && cv <= k && no_conflict g l v
  in
  let solve g =
    if k > Graph.max_degree g then Some (Labeling.of_node_labels (Coloring.greedy g))
    else
      Option.map Labeling.of_node_labels (Coloring.backtracking g k)
  in
  {
    Problem.name = Printf.sprintf "%d-coloring" k;
    node_alphabet = k;
    half_alphabet = 0;
    radius = 1;
    valid_at;
    prune_at = no_conflict;
    node_value_order = [];
    solve;
  }

(* ------------------------------------------------------------------ *)
(* Maximal independent set: 2 = in the set, 1 = out *)

let mis =
  let valid_at g (l : Labeling.t) v =
    let lv = l.Labeling.node_labels.(v) in
    let nb = Graph.neighbors g v in
    match lv with
    | 2 -> Array.for_all (fun u -> l.Labeling.node_labels.(u) <> 2) nb
    | 1 -> Array.exists (fun u -> l.Labeling.node_labels.(u) = 2) nb
    | _ -> false
  in
  let prune_at g (l : Labeling.t) v =
    match l.Labeling.node_labels.(v) with
    | 2 ->
        Array.for_all
          (fun u -> l.Labeling.node_labels.(u) <> 2)
          (Graph.neighbors g v)
    | 1 ->
        (* Maximality becomes hopeless once the whole neighborhood is
           assigned without a member. *)
        Array.exists
          (fun u -> l.Labeling.node_labels.(u) <> 1)
          (Graph.neighbors g v)
        || Graph.degree g v = 0
    | _ -> true
  in
  let solve g =
    let members = Bitset.of_list (Graph.n g) (Ruling.greedy_mis g) in
    Some
      (Labeling.of_node_labels
         (Array.init (Graph.n g) (fun v -> if Bitset.mem members v then 2 else 1)))
  in
  {
    Problem.name = "mis";
    node_alphabet = 2;
    half_alphabet = 0;
    radius = 1;
    valid_at;
    prune_at;
    node_value_order = [ 2; 1 ];
    solve;
  }

(* ------------------------------------------------------------------ *)
(* Half-edge helpers *)

let halves_assigned_agree g (l : Labeling.t) v check =
  Array.for_all
    (fun e ->
      let mine = Labeling.get_half l g v e in
      let theirs = Labeling.get_half_other l g v e in
      mine = 0 || theirs = 0 || check mine theirs)
    (Graph.incident_edges g v)

(* ------------------------------------------------------------------ *)
(* Maximal matching: half labels 1 = matched, 2 = unmatched *)

let maximal_matching =
  let matched_count (l : Labeling.t) v =
    Array.fold_left (fun acc x -> if x = 1 then acc + 1 else acc) 0
      l.Labeling.half_labels.(v)
  in
  let valid_at g (l : Labeling.t) v =
    halves_assigned_agree g l v ( = )
    && matched_count l v <= 1
    && Array.for_all
         (fun e ->
           Labeling.get_half l g v e <> 2
           ||
           let u = Graph.edge_other_endpoint g e v in
           matched_count l v = 1 || matched_count l u = 1)
         (Graph.incident_edges g v)
  in
  let fully_unmatched (l : Labeling.t) v =
    Array.for_all (fun x -> x = 2) l.Labeling.half_labels.(v)
  in
  let prune_at g (l : Labeling.t) v =
    halves_assigned_agree g l v ( = )
    && matched_count l v <= 1
    && ((not (fully_unmatched l v))
       || Array.for_all
            (fun u ->
              (not (fully_unmatched l u)) || matched_count l u = 1)
            (Graph.neighbors g v))
  in
  let solve g =
    let l = Labeling.create g ~use_halves:true in
    let saturated = Bitset.create (Graph.n g) in
    Graph.iter_edges
      (fun e (u, v) ->
        if not (Bitset.mem saturated u) && not (Bitset.mem saturated v) then begin
          Bitset.add saturated u;
          Bitset.add saturated v;
          Labeling.set_half l g u e 1;
          Labeling.set_half l g v e 1
        end)
      g;
    Graph.iter_nodes
      (fun v ->
        Array.iteri
          (fun i x -> if x = 0 then l.Labeling.half_labels.(v).(i) <- 2)
          l.Labeling.half_labels.(v))
      g;
    Some l
  in
  {
    Problem.name = "maximal-matching";
    node_alphabet = 0;
    half_alphabet = 2;
    (* The maximality clause reads a neighbor's other half-edge labels,
       i.e. labels of edges leaving the radius-1 ball: checkability radius
       2 under induced-ball semantics. *)
    radius = 2;
    valid_at;
    prune_at;
    node_value_order = [];
    solve;
  }

(* ------------------------------------------------------------------ *)
(* Sinkless orientation: half labels 1 = out, 2 = in *)

let sinkless_orientation =
  let complementary a b = (a = 1 && b = 2) || (a = 2 && b = 1) in
  let valid_at g (l : Labeling.t) v =
    halves_assigned_agree g l v complementary
    && (Graph.degree g v < 3
       || Array.exists (fun x -> x = 1) l.Labeling.half_labels.(v))
  in
  let prune_at g (l : Labeling.t) v = halves_assigned_agree g l v complementary in
  let solve g =
    let o = Orientation.of_trails g (fun _ -> true) in
    let l = Labeling.create g ~use_halves:true in
    Graph.iter_nodes
      (fun v ->
        Array.iteri
          (fun i u ->
            l.Labeling.half_labels.(v).(i) <-
              (if Orientation.points_from o v u then 1 else 2))
          (Graph.neighbors g v))
      g;
    Some l
  in
  {
    Problem.name = "sinkless-orientation";
    node_alphabet = 0;
    half_alphabet = 2;
    radius = 1;
    valid_at;
    prune_at;
    node_value_order = [];
    solve;
  }

(* ------------------------------------------------------------------ *)
(* Edge coloring via agreeing half labels *)

let edge_coloring k =
  if k < 1 then invalid_arg "Instances.edge_coloring";
  let distinct_assigned (l : Labeling.t) v =
    let seen = Hashtbl.create 8 in
    Array.for_all
      (fun x ->
        x = 0
        ||
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.replace seen x ();
          true
        end)
      l.Labeling.half_labels.(v)
  in
  let valid_at g (l : Labeling.t) v =
    halves_assigned_agree g l v ( = )
    && distinct_assigned l v
    && Array.for_all (fun x -> x >= 1 && x <= k) l.Labeling.half_labels.(v)
  in
  let prune_at g (l : Labeling.t) v =
    halves_assigned_agree g l v ( = ) && distinct_assigned l v
  in
  let greedy_solve g =
    let l = Labeling.create g ~use_halves:true in
    let ok = ref true in
    Graph.iter_edges
      (fun e (u, v) ->
        let used c =
          Array.exists (fun x -> x = c) l.Labeling.half_labels.(u)
          || Array.exists (fun x -> x = c) l.Labeling.half_labels.(v)
        in
        let rec least c = if c > k then 0 else if used c then least (c + 1) else c in
        let c = least 1 in
        if c = 0 then ok := false
        else begin
          Labeling.set_half l g u e c;
          Labeling.set_half l g v e c
        end)
      g;
    if !ok then Some l else None
  in
  let prob_stub =
    {
      Problem.name = Printf.sprintf "%d-edge-coloring" k;
      node_alphabet = 0;
      half_alphabet = k;
      radius = 1;
      valid_at;
      prune_at;
      node_value_order = [];
      solve = (fun _ -> None);
    }
  in
  let solve g =
    match greedy_solve g with
    | Some l -> Some l
    | None -> Problem.solve_by_backtracking prob_stub g
  in
  { prob_stub with solve }

(* ------------------------------------------------------------------ *)
(* Weak 2-coloring *)

let weak_2_coloring =
  let valid_at g (l : Labeling.t) v =
    let lv = l.Labeling.node_labels.(v) in
    (lv = 1 || lv = 2)
    && (Graph.degree g v = 0
       || Array.exists
            (fun u -> l.Labeling.node_labels.(u) <> lv && l.Labeling.node_labels.(u) > 0)
            (Graph.neighbors g v))
  in
  let solve g =
    (* BFS-parity per component: every non-isolated node has a parent or a
       child in the BFS forest, which has the opposite parity. *)
    let labels = Array.make (Graph.n g) 0 in
    let comp_members = Traversal.component_members g in
    Array.iter
      (fun members ->
        match members with
        | [] -> ()
        | root :: _ ->
            let dist = Traversal.bfs_distances g root in
            List.iter (fun v -> labels.(v) <- 1 + (dist.(v) mod 2)) members)
      comp_members;
    Some (Labeling.of_node_labels labels)
  in
  {
    Problem.name = "weak-2-coloring";
    node_alphabet = 2;
    half_alphabet = 0;
    radius = 1;
    valid_at;
    prune_at = always_true;
    node_value_order = [];
    solve;
  }

(* ------------------------------------------------------------------ *)
(* Defective coloring *)

let defective_coloring ~colors ~defect =
  if colors < 1 || defect < 0 then invalid_arg "Instances.defective_coloring";
  let same_colored_assigned g (l : Labeling.t) v =
    let cv = l.Labeling.node_labels.(v) in
    if cv = 0 then 0
    else
      Array.fold_left
        (fun acc u -> if l.Labeling.node_labels.(u) = cv then acc + 1 else acc)
        0 (Graph.neighbors g v)
  in
  let valid_at g (l : Labeling.t) v =
    let cv = l.Labeling.node_labels.(v) in
    cv >= 1 && cv <= colors && same_colored_assigned g l v <= defect
  in
  let prune_at g (l : Labeling.t) v = same_colored_assigned g l v <= defect in
  let prob_stub =
    {
      Problem.name = Printf.sprintf "%d-coloring-defect-%d" colors defect;
      node_alphabet = colors;
      half_alphabet = 0;
      radius = 1;
      valid_at;
      prune_at;
      node_value_order = [];
      solve = (fun _ -> None);
    }
  in
  let solve g =
    (* Greedy: take the color with the fewest conflicts so far; valid
       whenever colors >= Δ/(defect+1) + 1 by pigeonhole. *)
    let labels = Array.make (Graph.n g) 0 in
    let ok = ref true in
    Graph.iter_nodes
      (fun v ->
        let counts = Array.make (colors + 1) 0 in
        Array.iter
          (fun u ->
            let cu = labels.(u) in
            if cu > 0 then counts.(cu) <- counts.(cu) + 1)
          (Graph.neighbors g v);
        let best = ref 1 in
        for c = 2 to colors do
          if counts.(c) < counts.(!best) then best := c
        done;
        if counts.(!best) > defect then ok := false;
        labels.(v) <- !best)
      g;
    if !ok then Some (Labeling.of_node_labels labels)
    else Problem.solve_by_backtracking prob_stub g
  in
  { prob_stub with solve }

(* ------------------------------------------------------------------ *)
(* Bounded out-degree orientation *)

let bounded_outdegree_orientation k =
  if k < 1 then invalid_arg "Instances.bounded_outdegree_orientation";
  let complementary a b = (a = 1 && b = 2) || (a = 2 && b = 1) in
  let out_count (l : Labeling.t) v =
    Array.fold_left (fun acc x -> if x = 1 then acc + 1 else acc) 0
      l.Labeling.half_labels.(v)
  in
  let valid_at g (l : Labeling.t) v =
    halves_assigned_agree g l v complementary && out_count l v <= k
  in
  let prune_at g (l : Labeling.t) v =
    halves_assigned_agree g l v complementary && out_count l v <= k
  in
  let prob_stub =
    {
      Problem.name = Printf.sprintf "outdegree-%d-orientation" k;
      node_alphabet = 0;
      half_alphabet = 2;
      radius = 1;
      valid_at;
      prune_at;
      node_value_order = [];
      solve = (fun _ -> None);
    }
  in
  let solve g =
    let pos, degeneracy = Degeneracy.order g in
    if degeneracy <= k then begin
      let o = Degeneracy.orient g pos in
      let l = Labeling.create g ~use_halves:true in
      Graph.iter_nodes
        (fun v ->
          Array.iteri
            (fun i u ->
              l.Labeling.half_labels.(v).(i) <-
                (if Orientation.points_from o v u then 1 else 2))
            (Graph.neighbors g v))
        g;
      Some l
    end
    else Problem.solve_by_backtracking prob_stub g
  in
  { prob_stub with solve }

(* ------------------------------------------------------------------ *)
(* Input-labeled coloring: forbidden colors as Σin *)

let forbidden_color_coloring k ~forbidden =
  if k < 1 then invalid_arg "Instances.forbidden_color_coloring";
  let allowed v c = c >= 1 && c <= k && forbidden.(v) <> c in
  let no_conflict g (l : Labeling.t) v =
    let cv = l.Labeling.node_labels.(v) in
    cv = 0
    || (allowed v cv
       && Array.for_all
            (fun u ->
              let cu = l.Labeling.node_labels.(u) in
              cu = 0 || cu <> cv)
            (Graph.neighbors g v))
  in
  let valid_at g (l : Labeling.t) v =
    l.Labeling.node_labels.(v) > 0 && no_conflict g l v
  in
  let prob_stub =
    {
      Problem.name = Printf.sprintf "%d-coloring-with-forbidden" k;
      node_alphabet = k;
      half_alphabet = 0;
      radius = 1;
      valid_at;
      prune_at = no_conflict;
      node_value_order = [];
      solve = (fun _ -> None);
    }
  in
  let solve g =
    if Array.length forbidden <> Graph.n g then
      invalid_arg "forbidden_color_coloring: input length mismatch";
    (* Greedy works when k >= Δ + 2 (one extra color absorbs the
       restriction); otherwise fall back to backtracking. *)
    if k >= Graph.max_degree g + 2 then begin
      let labels = Array.make (Graph.n g) 0 in
      Graph.iter_nodes
        (fun v ->
          let used = Hashtbl.create 8 in
          Array.iter
            (fun u -> if labels.(u) > 0 then Hashtbl.replace used labels.(u) ())
            (Graph.neighbors g v);
          let rec least c =
            if Hashtbl.mem used c || c = forbidden.(v) then least (c + 1) else c
          in
          labels.(v) <- least 1)
        g;
      Some (Labeling.of_node_labels labels)
    end
    else Problem.solve_by_backtracking prob_stub g
  in
  { prob_stub with solve }

(* ------------------------------------------------------------------ *)
(* Minimal dominating set: 2 = in the set, 1 = out *)

let minimal_dominating_set =
  let in_set (l : Labeling.t) v = l.Labeling.node_labels.(v) = 2 in
  let dominated g l v =
    in_set l v || Array.exists (fun u -> in_set l u) (Graph.neighbors g v)
  in
  let dominators g l v =
    (if in_set l v then 1 else 0)
    + Array.fold_left
        (fun acc u -> if in_set l u then acc + 1 else acc)
        0 (Graph.neighbors g v)
  in
  let valid_at g (l : Labeling.t) v =
    let lv = l.Labeling.node_labels.(v) in
    (lv = 1 || lv = 2)
    && dominated g l v
    && (lv = 1
       ||
       (* v needs a private node: itself or a neighbor dominated only by
          v. *)
       dominators g l v = 1
       || Array.exists (fun u -> dominators g l u = 1) (Graph.neighbors g v))
  in
  let solve g =
    let members = Netgraph.Bitset.of_list (Graph.n g) (Ruling.greedy_mis g) in
    Some
      (Labeling.of_node_labels
         (Array.init (Graph.n g) (fun v ->
              if Netgraph.Bitset.mem members v then 2 else 1)))
  in
  (* Monotone prune: an out-node whose whole closed neighborhood is
     assigned without any member can never become dominated. *)
  let prune_at g (l : Labeling.t) v =
    l.Labeling.node_labels.(v) <> 1
    || dominated g l v
    || Array.exists
         (fun u -> l.Labeling.node_labels.(u) = 0)
         (Graph.neighbors g v)
  in
  {
    Problem.name = "minimal-dominating-set";
    node_alphabet = 2;
    half_alphabet = 0;
    radius = 2;
    valid_at;
    prune_at;
    node_value_order = [ 2; 1 ];
    solve;
  }

let all_bounded_degree delta =
  [
    (Printf.sprintf "%d-coloring" (delta + 1), coloring (delta + 1));
    ("mis", mis);
    ("maximal-matching", maximal_matching);
    ("sinkless-orientation", sinkless_orientation);
    (Printf.sprintf "%d-edge-coloring" ((2 * delta) - 1), edge_coloring ((2 * delta) - 1));
  ]
