(** Independent sets and ruling sets.

    An [(alpha, beta)]-ruling set (Section 3.1 of the paper) is a node set
    whose members are pairwise at distance at least [alpha], such that
    every node is within distance [beta] of a member.  A maximal
    independent set is a (2,1)-ruling set. *)

val greedy_mis : Graph.t -> int list
(** Maximal independent set, greedy in node-id order (the ID-greedy MIS a
    cluster center can compute locally from gathered topology). *)

val greedy_mis_within : Graph.t -> int list -> int list
(** Greedy MIS of the subgraph induced by the candidate nodes (given in the
    order in which they should be considered). *)

val ruling_set : Graph.t -> alpha:int -> int list
(** Greedy [(alpha, alpha - 1)]-ruling set in node-id order: members are
    pairwise at distance [>= alpha], and every node is within [alpha - 1]
    of a member.  [alpha >= 1]. *)

val ruling_set_of : Graph.t -> candidates:int list -> alpha:int -> int list
(** Greedy ruling set restricted to candidate nodes: members are pairwise
    at distance [>= alpha] in the full graph, and every *candidate* is
    within [alpha - 1] of a member. *)

val is_independent : Graph.t -> int list -> bool

val verify_ruling : Graph.t -> int list -> alpha:int -> beta:int -> bool
(** Checks both the pairwise-distance and the domination property (the
    latter over all nodes of the graph). *)
