(** Graph generators.

    Deterministic families (cycles, grids, trees, hypercubes) plus seeded
    random families.  Random families that must satisfy a promise (planted
    colorability, regularity, even degrees) construct the witness first and
    return it alongside the graph, so encoders have a feasible solution to
    start from — exactly the "graphs that admit a solution to Π" premise of
    the paper. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] nodes, [i -- i+1 mod n]. *)

val path : int -> Graph.t
(** Path on [n >= 1] nodes. *)

val complete : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t

val grid : int -> int -> Graph.t
(** [grid rows cols]: node [(r, c)] is [r * cols + c]; 4-neighbor mesh.
    Polynomial growth, hence sub-exponential. *)

val torus : int -> int -> Graph.t
(** Grid with wraparound; requires both dimensions [>= 3]. *)

val hypercube : int -> Graph.t
(** [hypercube d] on [2^d] nodes. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] connects [i] to [i ± o mod n] for each offset;
    even-degree, linear diameter for bounded offsets — a useful
    even-degree family with room (unlike random even-degree graphs, whose
    diameter is logarithmic). *)

val complete_kary_tree : int -> int -> Graph.t
(** [complete_kary_tree k depth]: every internal node has [k] children. *)

val caterpillar : int -> Graph.t
(** [caterpillar len]: a path [0..len-1] with a pendant leaf [len+i]
    attached to every path node [i].  Greedy 3-colorings put color 1 on
    the leaves, making the whole spine one large color-{2,3} component —
    the canonical stress case for the 3-coloring schema (C6). *)

val caterpillar_witness : int -> int array
(** A proper 3-coloring of {!caterpillar}: leaves 1, spine alternating
    2/3. *)

val ladder : int -> Graph.t
(** [ladder len]: two parallel paths of [len] nodes joined by rungs —
    3-regular inside, bipartite, linear growth. *)

val double_cycle : int -> Graph.t
(** Two concentric cycles of length [n] joined by spokes: 3-regular,
    linear diameter — an even-n instance family for open question 4
    (edge compression on 3-regular graphs). *)

val random_tree : Prng.t -> int -> Graph.t
(** Uniform attachment tree. *)

val gnp : Prng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n, p)]. *)

val random_geometric : Prng.t -> int -> float -> Graph.t
(** [random_geometric rng n radius]: n points uniform in the unit square,
    edges between pairs within Euclidean distance [radius].  A natural
    polynomial-growth (hence sub-exponential) family — the habitat of
    Contribution 1. *)

val random_regular : Prng.t -> int -> int -> Graph.t
(** [random_regular rng n d] via the configuration model with restarts;
    requires [n * d] even and [d < n]. *)

val random_even_degree : Prng.t -> int -> int -> Graph.t
(** Union of [k] random Hamiltonian-style cycles on [n] nodes: every node
    has even degree (at most [2k]; overlapping cycle edges may lower it by
    an even amount).  The canonical input family of Section 5. *)

val random_bipartite_regular : Prng.t -> int -> int -> Graph.t
(** [random_bipartite_regular rng side d]: bipartite [d]-regular graph on
    [2 * side] nodes built as a union of [d] disjoint perfect matchings
    (restarting collisions), left part [0..side-1]. *)

val planted_colorable : Prng.t -> int -> int -> float -> Graph.t * int array
(** [planted_colorable rng n k p] samples a balanced [k]-partition, adds
    each cross-part edge with probability [p], and returns the graph with
    its planted proper [k]-coloring (colors [1..k]). *)

val planted_max_degree_colorable :
  Prng.t -> n:int -> delta:int -> Graph.t * int array
(** Graph with maximum degree exactly [delta] that is [delta]-colorable,
    with a planted [delta]-coloring (colors [1..delta]): cross-class edges
    are added greedily under the degree cap.  Input family for
    Δ-coloring (C5). *)

val disjoint_union : Graph.t -> Graph.t -> Graph.t
(** Second graph's nodes are shifted by [n first]. *)

val add_edges : Graph.t -> (int * int) list -> Graph.t
