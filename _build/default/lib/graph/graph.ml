type t = {
  n : int;
  adj : int array array;
  edges : (int * int) array;
  edge_ids : (int * int, int) Hashtbl.t;
  incident : int array array;
}

let normalize u v = if u < v then (u, v) else (v, u)

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let seen = Hashtbl.create (List.length edge_list) in
  let add_edge (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    let e = normalize u v in
    if not (Hashtbl.mem seen e) then Hashtbl.replace seen e ()
  in
  List.iter add_edge edge_list;
  let edges = Array.make (Hashtbl.length seen) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter (fun e () -> edges.(!i) <- e; incr i) seen;
  Array.sort compare edges;
  let edge_ids = Hashtbl.create (Array.length edges) in
  Array.iteri (fun id e -> Hashtbl.replace edge_ids e id) edges;
  let deg = Array.make n 0 in
  Array.iter (fun (u, v) -> deg.(u) <- deg.(u) + 1; deg.(v) <- deg.(v) + 1) edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun nb -> Array.sort compare nb) adj;
  let incident =
    Array.init n (fun v ->
        Array.map (fun u -> Hashtbl.find edge_ids (normalize v u)) adj.(v))
  in
  { n; adj; edges; edge_ids; incident }

let n g = g.n
let m g = Array.length g.edges
let degree g v = Array.length g.adj.(v)
let neighbors g v = g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc nb -> max acc (Array.length nb)) 0 g.adj

let is_edge g u v = u <> v && Hashtbl.mem g.edge_ids (normalize u v)

let edge_id g u v =
  match Hashtbl.find_opt g.edge_ids (normalize u v) with
  | Some id -> id
  | None -> raise Not_found

let edge_endpoints g e = g.edges.(e)
let incident_edges g v = g.incident.(v)

let edge_other_endpoint g e v =
  let u, w = g.edges.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.edge_other_endpoint: node not on edge"

let iter_edges f g = Array.iteri f g.edges

let fold_edges f g init =
  let acc = ref init in
  Array.iteri (fun id e -> acc := f id e !acc) g.edges;
  !acc

let iter_nodes f g =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_nodes f g init =
  let acc = ref init in
  iter_nodes (fun v -> acc := f v !acc) g;
  !acc

let edges g = g.edges

let induced g nodes =
  let to_sub = Array.make g.n (-1) in
  let count = ref 0 in
  List.iter
    (fun v ->
      if to_sub.(v) < 0 then begin
        to_sub.(v) <- !count;
        incr count
      end)
    nodes;
  let to_orig = Array.make !count 0 in
  Array.iteri (fun v i -> if i >= 0 then to_orig.(i) <- v) to_sub;
  let sub_edges =
    fold_edges
      (fun _ (u, v) acc ->
        if to_sub.(u) >= 0 && to_sub.(v) >= 0 then (to_sub.(u), to_sub.(v)) :: acc
        else acc)
      g []
  in
  (of_edges ~n:!count sub_edges, to_sub, to_orig)

let remove_nodes g removed =
  let kept = fold_nodes (fun v acc -> if Bitset.mem removed v then acc else v :: acc) g [] in
  induced g (List.rev kept)

let power g k =
  if k < 1 then invalid_arg "Graph.power";
  (* BFS from each node up to depth k. *)
  let dist = Array.make g.n (-1) in
  let queue = Queue.create () in
  let edge_acc = ref [] in
  for s = 0 to g.n - 1 do
    Queue.clear queue;
    dist.(s) <- 0;
    Queue.add s queue;
    let touched = ref [ s ] in
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      if dist.(v) < k then
        Array.iter
          (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              touched := u :: !touched;
              Queue.add u queue
            end)
          g.adj.(v)
    done;
    (* Collect pairs at distance in [1, k] with s < other endpoint. *)
    List.iter
      (fun v ->
        if v > s && dist.(v) >= 1 then edge_acc := (s, v) :: !edge_acc;
        dist.(v) <- -1)
      !touched
  done;
  of_edges ~n:g.n !edge_acc

let line_graph g =
  let acc = ref [] in
  iter_nodes
    (fun v ->
      let inc = g.incident.(v) in
      for i = 0 to Array.length inc - 1 do
        for j = i + 1 to Array.length inc - 1 do
          acc := (inc.(i), inc.(j)) :: !acc
        done
      done)
    g;
  of_edges ~n:(m g) !acc

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Bitset.create g.n in
    let queue = Queue.create () in
    Bitset.add seen 0;
    Queue.add 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      Array.iter
        (fun u ->
          if not (Bitset.mem seen u) then begin
            Bitset.add seen u;
            incr count;
            Queue.add u queue
          end)
        g.adj.(v)
    done;
    !count = g.n
  end

let equal a b = a.n = b.n && a.edges = b.edges

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun _ (u, v) -> Format.fprintf fmt "%d -- %d@," u v) g;
  Format.fprintf fmt "@]"
