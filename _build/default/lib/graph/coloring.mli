(** Vertex colorings: validity checks and centralized constructions.

    Colors are positive integers; [0] (or any non-positive value) denotes
    "uncolored" in partial colorings.  Centralized constructions are used
    by encoders (the prover side of an advice schema); distributed
    constructions live in [Baselines] and [Schemas]. *)

val is_proper : Graph.t -> int array -> bool
(** No edge joins two equal positive colors and every node is colored. *)

val is_proper_partial : Graph.t -> int array -> bool
(** No edge joins two equal positive colors; uncolored nodes allowed. *)

val num_colors : int array -> int
(** Largest color used (0 for the empty coloring). *)

val greedy : Graph.t -> int array
(** First-fit in node-id order; uses at most [max_degree g + 1] colors. *)

val greedy_order : Graph.t -> int array -> int array
(** First-fit in the given node order. *)

val make_greedy : Graph.t -> int array -> int array
(** Rewrite a proper coloring into a *greedy* proper coloring using no new
    colors: repeatedly lower any node whose color is not the least color
    absent from its neighborhood.  In the result, every node of color [c]
    has neighbors of all colors [1..c-1] — the property Section 7 of the
    paper relies on.  The input must be proper. *)

val is_greedy : Graph.t -> int array -> bool

val distance_coloring : Graph.t -> int -> int array
(** [distance_coloring g d]: nodes at distance [<= d] receive distinct
    colors (greedy on the [d]-th power graph). *)

val color_classes : int array -> int list array
(** [color_classes c] indexed by color ([0] unused). *)

val two_color_bipartite : Graph.t -> int array
(** Colors {1,2}; @raise Invalid_argument if not bipartite. *)

val backtracking : Graph.t -> int -> int array option
(** Exact [k]-coloring by backtracking with forward checking; exponential,
    meant for small graphs and for encoder-side feasibility (e.g. finding a
    Δ-coloring certificate). *)
