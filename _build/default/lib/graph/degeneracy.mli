(** Degeneracy orderings and low-out-degree orientations.

    The degeneracy d of a graph is the smallest k such that every subgraph
    has a node of degree at most k; the canonical smallest-last removal
    order certifies it, and orienting every edge from the earlier-removed
    endpoint to the later one bounds every out-degree by d. *)

val order : Graph.t -> int array * int
(** [(pos, d)]: removal position of every node under smallest-last
    (minimum remaining degree, ties by node id) and the degeneracy [d]. *)

val orient : Graph.t -> int array -> Orientation.t
(** Orient each edge from the endpoint removed earlier to the one removed
    later; with [pos] from {!order}, out-degrees are at most the
    degeneracy. *)
