(** Growth of balls, and the paper's Lemma 4.3 radius selection.

    Section 4 of the paper rests on a property of sub-exponential-growth
    graphs (Lemma 3 there): around every node one can pick a radius
    α ∈ [x, 2x] whose ball dwarfs its own boundary sphere,
    |N≤α(v)| ≥ Δʳ · |N₌α₊ᵣ(v)| — the room that lets a cluster store its
    border's solution inside itself.  This module makes that lemma
    executable: it finds such an α when one exists, and exposes growth
    profiles so tests can tell polynomial-growth families (cycles, grids)
    from expanding ones (hypercubes, random graphs), where the selection
    rightly fails at small scales. *)

val profile : Graph.t -> int -> int -> int list
(** [profile g v rmax]: ball sizes [|N≤0|; |N≤1|; ...; |N≤rmax|]. *)

val sphere_sizes : Graph.t -> int -> int -> int list
(** Sphere sizes [|N₌0|; ...; |N₌rmax|]. *)

val lemma3_alpha : Graph.t -> v:int -> r:int -> x:int -> int option
(** The smallest α ∈ [x, 2x] with |N≤α(v)| ≥ Δʳ · |N₌α₊ᵣ(v)|, if any.
    The paper proves existence for every sub-exponential-growth family
    once x is large enough. *)

val exponent_estimate : Graph.t -> v:int -> rmax:int -> float
(** Log-log slope of the ball-size profile between radius 1 and [rmax] —
    ~1 for cycles, ~2 for grids, large for expanders.  Requires the ball
    at [rmax] to be strictly larger than at 1. *)
