type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 bits of entropy vs small bounds. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = { state = mix (next_int64 t) }

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
