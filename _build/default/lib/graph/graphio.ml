let to_edge_list g =
  let buf = Buffer.create (16 * Graph.m g) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges
    (fun _ (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

let of_edge_list text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> invalid_arg "Graphio.of_edge_list: empty input"
  | header :: rest ->
      let n =
        match String.split_on_char ' ' header with
        | [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some n when n >= 0 -> n
            | _ -> invalid_arg "Graphio.of_edge_list: bad node count")
        | _ -> invalid_arg "Graphio.of_edge_list: missing 'n <count>' header"
      in
      let parse_edge line =
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> (u, v)
            | _ -> invalid_arg ("Graphio.of_edge_list: bad edge line " ^ line))
        | _ -> invalid_arg ("Graphio.of_edge_list: bad edge line " ^ line)
      in
      Graph.of_edges ~n (List.map parse_edge rest)

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_edge_list text

let save path g =
  let oc = open_out path in
  output_string oc (to_edge_list g);
  close_out oc

let to_dot ?highlight ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  Graph.iter_nodes
    (fun v ->
      let label =
        match labels with
        | Some arr when v < Array.length arr && arr.(v) <> "" ->
            Printf.sprintf " label=\"%d:%s\"" v arr.(v)
        | _ -> ""
      in
      let fill =
        match highlight with
        | Some h when Bitset.mem h v ->
            " style=filled fillcolor=lightblue"
        | _ -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d [%s%s];\n" v label fill))
    g;
  Graph.iter_edges
    (fun _ (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
