lib/graph/degeneracy.ml: Array Bitset Graph Orientation
