lib/graph/growth.mli: Graph
