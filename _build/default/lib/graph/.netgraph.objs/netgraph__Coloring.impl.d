lib/graph/coloring.ml: Array Graph Hashtbl Traversal
