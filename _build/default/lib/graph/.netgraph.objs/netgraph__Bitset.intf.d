lib/graph/bitset.mli:
