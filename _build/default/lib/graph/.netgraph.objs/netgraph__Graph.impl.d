lib/graph/graph.ml: Array Bitset Format Hashtbl List Queue
