lib/graph/builders.ml: Array Graph Hashtbl List Option Prng
