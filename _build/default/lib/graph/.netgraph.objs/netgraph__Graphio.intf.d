lib/graph/graphio.mli: Bitset Graph
