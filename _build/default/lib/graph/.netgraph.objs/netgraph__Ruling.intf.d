lib/graph/ruling.mli: Graph
