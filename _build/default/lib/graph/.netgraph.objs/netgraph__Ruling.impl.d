lib/graph/ruling.ml: Array Bitset Graph List Traversal
