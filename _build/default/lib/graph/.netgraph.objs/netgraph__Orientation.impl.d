lib/graph/orientation.ml: Array Bitset Graph Hashtbl List Prng
