lib/graph/degeneracy.mli: Graph Orientation
