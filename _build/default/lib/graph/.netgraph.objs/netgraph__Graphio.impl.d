lib/graph/graphio.ml: Array Bitset Buffer Graph List Printf String
