lib/graph/orientation.mli: Graph Prng
