lib/graph/builders.mli: Graph Prng
