lib/graph/growth.ml: Array Graph Traversal
