lib/graph/prng.mli:
