(** Compact fixed-capacity bit sets over [0..n-1].

    Used for advice bit vectors, visited sets in traversals and membership
    tests in edge-subset compression. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val length : t -> int
(** Universe size [n]. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val set : t -> int -> bool -> unit

val cardinal : t -> int
(** Number of members (O(n/64)). *)

val clear : t -> unit
val copy : t -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val equal : t -> t -> bool
