let profile g v rmax =
  let dist = Traversal.bfs_distances g v in
  let counts = Array.make (rmax + 1) 0 in
  Array.iter
    (fun d -> if d >= 0 && d <= rmax then counts.(d) <- counts.(d) + 1)
    dist;
  let acc = ref 0 in
  Array.to_list (Array.map (fun c -> acc := !acc + c; !acc) counts)

let sphere_sizes g v rmax =
  let dist = Traversal.bfs_distances g v in
  let counts = Array.make (rmax + 1) 0 in
  Array.iter
    (fun d -> if d >= 0 && d <= rmax then counts.(d) <- counts.(d) + 1)
    dist;
  Array.to_list counts

let lemma3_alpha g ~v ~r ~x =
  if x < 1 || r < 0 then invalid_arg "Growth.lemma3_alpha";
  let rmax = (2 * x) + r in
  let dist = Traversal.bfs_distances g v in
  let sphere = Array.make (rmax + 1) 0 in
  Array.iter
    (fun d -> if d >= 0 && d <= rmax then sphere.(d) <- sphere.(d) + 1)
    dist;
  let delta = max 1 (Graph.max_degree g) in
  let delta_r =
    let rec pow acc i = if i = 0 then acc else pow (acc * delta) (i - 1) in
    pow 1 r
  in
  let ball = Array.make (rmax + 1) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun d c ->
      acc := !acc + c;
      ball.(d) <- !acc)
    sphere;
  let rec search alpha =
    if alpha > 2 * x then None
    else if ball.(alpha) >= delta_r * sphere.(alpha + r) then Some alpha
    else search (alpha + 1)
  in
  search x

let exponent_estimate g ~v ~rmax =
  let balls = Array.of_list (profile g v rmax) in
  let b1 = float_of_int balls.(1) and br = float_of_int balls.(rmax) in
  if br <= b1 then invalid_arg "Growth.exponent_estimate: flat profile";
  (log br -. log b1) /. (log (float_of_int rmax) -. log 1.0)
