type t = { n : int; words : Bytes.t }

let words_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Bytes.make (words_for n) '\000' }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let w = i lsr 3 in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let w = i lsr 3 in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) land lnot (1 lsl (i land 7)) land 0xff))

let set t i b = if b then add t i else remove t i

let popcount_byte = Array.init 256 (fun b ->
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0)

let cardinal t =
  let acc = ref 0 in
  for w = 0 to Bytes.length t.words - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.unsafe_get t.words w))
  done;
  !acc

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let copy t = { n = t.n; words = Bytes.copy t.words }

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let equal a b = a.n = b.n && Bytes.equal a.words b.words
