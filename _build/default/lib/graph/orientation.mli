(** Edge orientations and Eulerian trail partitions.

    An orientation assigns a direction to every edge.  The balanced
    orientation problem (Section 5 of the paper) asks for
    [|indeg v - outdeg v| <= 1] at every node, with equality to 0 at
    even-degree nodes.  The classical construction pairs up the edges
    around every node and follows the pairing, decomposing the edge set
    into trails (closed trails for even-degree graphs, plus open trails
    ending at odd-degree nodes); orienting every trail consistently yields
    a balanced orientation.  This module provides that decomposition with
    the canonical ID-based pairing, which a LOCAL node can compute from
    its sorted neighbor list without communication. *)

type t
(** An orientation of a fixed graph. *)

val create : Graph.t -> t
(** All edges oriented from lower to higher node id. *)

val copy : t -> t

val graph : t -> Graph.t

val points_from : t -> int -> int -> bool
(** [points_from o u v] is true when edge [{u,v}] is oriented [u -> v]. *)

val orient : t -> int -> int -> unit
(** [orient o u v] directs edge [{u,v}] as [u -> v]. *)

val flip : t -> int -> unit
(** Reverse the direction of an edge id. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val out_neighbors : t -> int -> int array
(** Heads of out-edges, in sorted-neighbor order (canonical). *)

val imbalance : t -> int -> int
(** [|indeg - outdeg|] at a node. *)

val max_imbalance : t -> int

val is_balanced : t -> bool
(** Every node has [indeg = outdeg] (requires all degrees even). *)

val is_almost_balanced : t -> bool
(** Every node has [|indeg - outdeg| <= 1]. *)

(** A trail of the canonical Eulerian partition.  [nodes] has one more
    entry than [edges]; [edges.(i)] joins [nodes.(i)] and [nodes.(i+1)].
    For a closed trail, [nodes.(0) = nodes.(length - 1)]. *)
type trail = {
  nodes : int array;
  edges : int array;
  closed : bool;
}

val trail_length : trail -> int

val euler_partition : Graph.t -> trail list
(** Canonical decomposition of the edge set into trails: each node pairs
    its incident edges [(e0,e1), (e2,e3), ...] in sorted-neighbor order and
    trails follow partners.  Every edge appears in exactly one trail; a
    node is the endpoint of at most one open trail (exactly one iff its
    degree is odd).  The decomposition is a pure function of the graph, so
    encoder and decoder agree on it. *)

val trail_through : Graph.t -> int -> int -> trail
(** [trail_through g v e] is the trail of the canonical partition
    containing edge [e] ([v] must be an endpoint of [e]); the returned
    trail is normalized exactly as in {!euler_partition}. *)

val orient_trail : t -> trail -> forward:bool -> unit
(** Orient every edge of the trail consistently; [forward] follows the
    trail's node order. *)

val of_trails : Graph.t -> (trail -> bool) -> t
(** Orient all trails of the canonical partition, choosing each trail's
    direction with the given function.  The result is almost balanced. *)

val random : Prng.t -> Graph.t -> t
(** Independent fair coin per edge (baseline). *)
