(** Δ-coloring Δ-colorable graphs with advice (Contribution 5, Section 6).

    Three-stage pipeline, mirroring the paper's schema:

    + {b Clustered coloring with advice} (Section 6.1).  A ruling set
      induces a Voronoi clustering both sides compute identically; each
      cluster center's advice stores the cluster's color in a proper
      coloring of the cluster graph (computed by the omniscient encoder).
      A node's color is the pair (its greedy color inside the cluster, the
      cluster color) — proper, with a palette bounded by a function of Δ
      and the clustering parameters only.
    + {b Reduction to Δ+1 colors, no advice.}  Color classes of the
      clustered coloring are processed one per round; every node picks the
      least color of 1..Δ+1 free in its neighborhood.  (The paper invokes
      the O(√(Δ log Δ))-round list-coloring algorithm here; class iteration
      has a worse Δ-dependence but the same n-independence, which is what
      Definition 2 requires.  See DESIGN.md.)
    + {b Δ+1 → Δ with advice} (Section 6.2).  Nodes of color Δ+1 are
      uncolored; the encoder — which can simulate the decoder's first two
      stages exactly — finds for each a short *shift path* to a node that
      can absorb a recoloring (Panconesi–Srinivasan-style), writes the path
      into the advice (each path node stores its wave number and successor
      slot), and the decoder replays the shifts wave by wave.  Paths of one
      wave are kept at pairwise distance ≥ 2, so their shifts commute.

    The encoder certifies by running the decoder. *)

type params = {
  cluster_spread : int;  (** ruling-set distance of cluster centers *)
  max_path : int;  (** longest admissible shift path *)
  max_waves : int;  (** at most 4 (two advice bits) *)
  stride : int;
      (** relay-marker spacing along shift paths: only every [stride]-th
          path node holds advice, carrying the relative route to the next
          marker (the paper's sparse relay encoding) *)
}

val default_params : params

exception Encoding_failure of string

val encode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t
(** Variable-length advice (pair of cluster advice and shift-path advice).
    @raise Encoding_failure when the graph cannot be Δ-colored this way
    (e.g. it is K_{Δ+1} or an odd cycle) or the search gives up. *)

val decode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t -> int array
(** A proper coloring with at most [max_degree g] colors. *)

val decode_stages :
  ?params:params ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  int array * int array * int array
(** The intermediate colorings (clustered, Δ+1, final) — exposed for tests
    and the experiment harness. *)
