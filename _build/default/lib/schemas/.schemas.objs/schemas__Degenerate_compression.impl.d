lib/schemas/degenerate_compression.ml: Array Bitset Degeneracy Graph List Netgraph Orientation Printf String Traversal
