lib/schemas/subexp_lcl.ml: Advice Array Bitset Format Graph Lcl Lcl_support List Netgraph Queue Ruling String
