lib/schemas/splitting.ml: Advice Array Balanced_orientation Format Graph Netgraph Orientation Traversal Two_coloring
