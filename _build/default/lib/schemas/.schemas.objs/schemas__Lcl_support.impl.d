lib/schemas/lcl_support.ml: Advice Array Buffer Format Graph Lcl List Netgraph String Traversal
