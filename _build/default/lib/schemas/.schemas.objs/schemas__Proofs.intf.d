lib/schemas/proofs.mli: Lcl Netgraph Subexp_lcl
