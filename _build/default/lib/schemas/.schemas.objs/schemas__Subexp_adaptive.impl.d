lib/schemas/subexp_adaptive.ml: Advice Array Coloring Format Graph Growth Lcl Lcl_support List Netgraph String Traversal
