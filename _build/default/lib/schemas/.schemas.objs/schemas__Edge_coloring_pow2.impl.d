lib/schemas/edge_coloring_pow2.ml: Advice Array Format Graph Hashtbl List Netgraph Splitting Traversal
