lib/schemas/edge_coloring_pow2.mli: Advice Netgraph Splitting
