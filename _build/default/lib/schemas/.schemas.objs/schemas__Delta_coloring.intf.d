lib/schemas/delta_coloring.mli: Advice Netgraph
