lib/schemas/distributed.mli: Advice Balanced_orientation Netgraph
