lib/schemas/three_coloring.ml: Array Bitset Coloring Format Graph Hashtbl List Netgraph Option Queue Ruling Traversal
