lib/schemas/distributed.ml: Advice Array Balanced_orientation Graph Localmodel Netgraph Orientation String
