lib/schemas/proofs.ml: Advice Bitset Graph Lcl List Netgraph Prng Subexp_lcl
