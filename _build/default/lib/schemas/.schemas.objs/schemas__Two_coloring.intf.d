lib/schemas/two_coloring.mli: Advice Netgraph
