lib/schemas/delta_coloring.ml: Advice Array Bitset Buffer Coloring Format Graph Hashtbl List Netgraph Option Queue Ruling String
