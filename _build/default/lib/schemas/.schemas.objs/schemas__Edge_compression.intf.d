lib/schemas/edge_compression.mli: Advice Balanced_orientation Netgraph
