lib/schemas/balanced_orientation.ml: Advice Array Bitset Format Graph List Netgraph Orientation String Traversal
