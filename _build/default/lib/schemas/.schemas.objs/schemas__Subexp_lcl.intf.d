lib/schemas/subexp_lcl.mli: Advice Lcl Netgraph
