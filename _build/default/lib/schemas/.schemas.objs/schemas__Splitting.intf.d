lib/schemas/splitting.mli: Advice Balanced_orientation Netgraph Two_coloring
