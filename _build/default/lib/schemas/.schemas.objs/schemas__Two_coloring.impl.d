lib/schemas/two_coloring.ml: Advice Array Format Graph List Netgraph Queue Ruling String Traversal
