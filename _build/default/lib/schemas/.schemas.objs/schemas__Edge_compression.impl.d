lib/schemas/edge_compression.ml: Array Balanced_orientation Bitset Graph List Netgraph Orientation String
