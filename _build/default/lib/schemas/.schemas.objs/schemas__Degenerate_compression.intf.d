lib/schemas/degenerate_compression.mli: Advice Netgraph
