lib/schemas/three_coloring.mli: Advice Netgraph
