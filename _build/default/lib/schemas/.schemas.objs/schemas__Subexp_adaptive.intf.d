lib/schemas/subexp_adaptive.mli: Advice Lcl Netgraph
