lib/schemas/balanced_orientation.mli: Advice Netgraph
