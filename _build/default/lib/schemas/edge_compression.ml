open Netgraph

let bits_bound d = ((d + 1) / 2) + 1

let encode ?(params = Balanced_orientation.onebit_params) g x =
  if Bitset.length x <> Graph.m g then
    invalid_arg "Edge_compression.encode: edge set size mismatch";
  let ones = Balanced_orientation.encode_onebit ~params g in
  let o = Balanced_orientation.decode_onebit ~params g ones in
  Array.init (Graph.n g) (fun v ->
      let orientation_bit = if Bitset.mem ones v then "1" else "0" in
      let membership =
        Array.to_list (Orientation.out_neighbors o v)
        |> List.map (fun u ->
               if Bitset.mem x (Graph.edge_id g v u) then "1" else "0")
        |> String.concat ""
      in
      orientation_bit ^ membership)

let split ?params g assignment =
  let ones = Bitset.create (Graph.n g) in
  Array.iteri
    (fun v s ->
      if String.length s = 0 then
        invalid_arg "Edge_compression.decode: missing orientation bit";
      if s.[0] = '1' then Bitset.add ones v)
    assignment;
  let o = Balanced_orientation.decode_onebit ?params g ones in
  (o, fun v -> String.sub assignment.(v) 1 (String.length assignment.(v) - 1))

let decode ?params g assignment =
  let o, vector = split ?params g assignment in
  let x = Bitset.create (Graph.m g) in
  Graph.iter_nodes
    (fun v ->
      let out = Orientation.out_neighbors o v in
      let vec = vector v in
      if String.length vec <> Array.length out then
        invalid_arg "Edge_compression.decode: membership vector length mismatch";
      Array.iteri
        (fun i u -> if vec.[i] = '1' then Bitset.add x (Graph.edge_id g v u))
        out)
    g;
  x

let incident_memberships ?params g assignment v =
  let x = decode ?params g assignment in
  Array.to_list (Graph.incident_edges g v)
  |> List.map (fun e -> (e, Bitset.mem x e))
