open Netgraph

exception Unsupported of string

let degeneracy_order g = Degeneracy.order g

let orient_by_order g pos = Degeneracy.orient g pos

let check_cubic g =
  Graph.iter_nodes
    (fun v ->
      if Graph.degree g v <> 3 then
        raise (Unsupported (Printf.sprintf "node %d has degree %d, not 3" v (Graph.degree g v))))
    g

(* Shared structure both sides derive deterministically: per component the
   deleted edge (maximal edge id), the pruned graph, its smallest-last
   order and orientation, and the per-component last-removed node. *)
let shared_structure g =
  let comp, k = Traversal.components g in
  let deleted = Array.make k (-1) in
  Graph.iter_edges
    (fun e (u, _) ->
      let c = comp.(u) in
      if deleted.(c) < e then deleted.(c) <- e)
    g;
  let deleted_set = Bitset.create (Graph.m g) in
  Array.iter (fun e -> if e >= 0 then Bitset.add deleted_set e) deleted;
  let pruned_edges =
    Graph.fold_edges
      (fun e pair acc -> if Bitset.mem deleted_set e then acc else pair :: acc)
      g []
  in
  let pruned = Graph.of_edges ~n:(Graph.n g) pruned_edges in
  let pos, degeneracy = degeneracy_order pruned in
  let o = orient_by_order pruned pos in
  (* Last-removed node of each component (of g). *)
  let last = Array.make k (-1) in
  Graph.iter_nodes
    (fun v ->
      let c = comp.(v) in
      if last.(c) < 0 || pos.(v) > pos.(last.(c)) then last.(c) <- v)
    g;
  let hides_deleted = Array.make (Graph.n g) (-1) in
  Array.iteri
    (fun c v -> if v >= 0 && deleted.(c) >= 0 then hides_deleted.(v) <- deleted.(c))
    last;
  (pruned, o, degeneracy, hides_deleted)

let encode g x =
  check_cubic g;
  if Bitset.length x <> Graph.m g then
    invalid_arg "Degenerate_compression.encode: edge set size mismatch";
  let pruned, o, degeneracy, hides_deleted = shared_structure g in
  if degeneracy > 2 then
    raise (Unsupported "pruned graph is not 2-degenerate (disconnected anomaly?)");
  Array.init (Graph.n g) (fun v ->
      let member e_pruned =
        (* Edge of the pruned graph -> the same edge of g by endpoints. *)
        let a, b = Graph.edge_endpoints pruned e_pruned in
        Bitset.mem x (Graph.edge_id g a b)
      in
      let out_bits =
        Array.to_list (Orientation.out_neighbors o v)
        |> List.map (fun u ->
               if member (Graph.edge_id pruned v u) then "1" else "0")
        |> String.concat ""
      in
      if hides_deleted.(v) >= 0 then
        out_bits ^ (if Bitset.mem x hides_deleted.(v) then "1" else "0")
      else out_bits)

let decode g assignment =
  check_cubic g;
  let _pruned, o, _, hides_deleted = shared_structure g in
  let x = Bitset.create (Graph.m g) in
  Graph.iter_nodes
    (fun v ->
      let out = Orientation.out_neighbors o v in
      let expected =
        Array.length out + if hides_deleted.(v) >= 0 then 1 else 0
      in
      if String.length assignment.(v) <> expected then
        invalid_arg "Degenerate_compression.decode: wrong string length";
      Array.iteri
        (fun i u ->
          if assignment.(v).[i] = '1' then Bitset.add x (Graph.edge_id g v u))
        out;
      if hides_deleted.(v) >= 0 && assignment.(v).[Array.length out] = '1'
      then Bitset.add x hides_deleted.(v))
    g;
  x

let max_bits_per_node assignment =
  Array.fold_left (fun acc s -> max acc (String.length s)) 0 assignment
