(** Edge splittings of bipartite even-degree graphs (Section 5 extension).

    A *splitting* 2-colors the edges red/blue so that every node sees
    equally many red and blue edges.  Composing a balanced orientation with
    a 2-coloring of the nodes solves it: color red the edges oriented from
    white to black and blue the edges oriented from black to white — a
    white node's red edges are its d/2 out-edges, a black node's red edges
    are its d/2 in-edges.  The advice is the pair (Lemma 1) of the
    orientation schema's and the 2-coloring schema's assignments. *)

type params = {
  orientation : Balanced_orientation.params;
  coloring : Two_coloring.params;
}

val default_params : params

exception Encoding_failure of string

val encode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t
(** @raise Encoding_failure unless the graph is bipartite with all degrees
    even. *)

val decode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t -> int array
(** Edge colors indexed by edge id: 1 = red, 2 = blue. *)

val verify : Netgraph.Graph.t -> int array -> bool
(** Every node has equally many red and blue incident edges. *)
