(** 3-coloring 3-colorable graphs with one bit per node (Contribution 6,
    Section 7).

    The encoder fixes a greedy proper 3-coloring φ (every node of color c
    has neighbors of all colors below c) and assigns bit 1 to every node of
    color 1.  Removing color 1 leaves components of colors {2,3}; each is
    bipartite, but 2-coloring it is a global problem, so the advice must
    also pin down the *parity* of each large component.  Extra 1-bits do
    that, and the two kinds of 1-bits are distinguished by a purely local
    rule the greedy property makes sound:

    - a 1-bit is of *type 1* (its node has color 1) iff at most one
      neighbor carries a 1 — color classes are independent sets, so a
      color-1 node sees 1s only on parity-group members, of which the
      selection allows at most one per color-1 node;
    - parity-group members always see at least two 1s: their own color-1
      neighbors (guaranteed by greediness) plus, for adjacent pairs, their
      partner.

    A parity group consists of two node sets S and S′ (each a single node
    with two color-1 neighbors, or an adjacent pair with no common color-1
    neighbor — Lemma 2 of the paper), placed a few hops apart.  Lighting
    only the set containing the group's smallest node s encodes φ(s) = 2;
    lighting both sets (two 1-components instead of one) encodes φ(s) = 3.
    Decoders locate groups, recover φ(s), and 2-color their component by
    parity from s.  Components without any group are canonically 2-colored
    (smallest node ↦ color 2), which is always valid because distinct
    components of the color-{2,3} subgraph are never adjacent.

    The encoder certifies its output by running the decoder and checking
    the result is a proper 3-coloring. *)

type params = {
  small_threshold : int;
      (** Components of the color-{2,3} subgraph whose diameter is at most
          this receive no groups; canonical 2-coloring handles them. *)
  group_radius : int;
      (** How far around its ruling node a group may sit; also determines
          the decoder's merge radius for grouping 1-components. *)
  group_spread : int;
      (** Ruling-set distance between group centers; keep at least
          5 × group_radius so distinct groups cannot be confused. *)
}

val default_params : params

exception Encoding_failure of string

val encode :
  ?params:params ->
  ?witness:int array ->
  Netgraph.Graph.t ->
  Advice.Assignment.t
(** One bit per node.  [witness] is any proper 3-coloring; without it the
    encoder runs exact backtracking (exponential — small graphs only).
    @raise Encoding_failure when the graph is not 3-colorable or group
    placement fails. *)

val decode :
  ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t -> int array
(** A proper 3-coloring (colors 1..3).  @raise Encoding_failure on advice
    that does not follow the schema. *)

val classify :
  Netgraph.Graph.t -> Advice.Assignment.t -> [ `Type1 | `Type23 | `Zero ] array
(** The local bit-type discrimination, exposed for tests and experiments. *)
