open Netgraph

type params = { spread : int }

let default_params = { spread = 8 }

(* Beacon messages are one payload bit (10 symbols); spacing needs to
   exceed twice that. *)
let onebit_params = { spread = 32 }

exception Encoding_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Encoding_failure s)) fmt

let decode_radius params = params.spread - 1

let encode ?(params = default_params) g =
  match Traversal.bipartition g with
  | None -> fail "graph is not bipartite"
  | Some side ->
      let beacons = Ruling.ruling_set g ~alpha:params.spread in
      let assignment = Advice.Assignment.empty g in
      List.iter
        (fun v -> assignment.(v) <- (if side.(v) = 1 then "1" else "0"))
        beacons;
      assignment

let decode ?params:_ g assignment =
  let holders =
    List.filter (fun v -> String.length assignment.(v) = 1)
      (Advice.Assignment.holders assignment)
  in
  if holders = [] && Graph.n g > 0 then fail "no beacons present";
  (* Multi-source BFS recording, for each node, the color implied by the
     beacon that reaches it first; bipartiteness makes all beacons of a
     component agree, so the race is harmless. *)
  let n = Graph.n g in
  let color = Array.make n 0 in
  let queue = Queue.create () in
  List.iter
    (fun b ->
      color.(b) <- (if assignment.(b) = "1" then 2 else 1);
      Queue.add b queue)
    holders;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Array.iter
      (fun u ->
        if color.(u) = 0 then begin
          color.(u) <- 3 - color.(v);
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  if Array.exists (fun c -> c = 0) color then
    fail "some component has no beacon";
  color
