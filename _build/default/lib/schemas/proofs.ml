open Netgraph

type t = {
  prove : Graph.t -> Bitset.t;
  verify : Graph.t -> Bitset.t -> bool;
}

let of_lcl ?params prob =
  let prove g = Subexp_lcl.encode_onebit ?params prob g in
  let verify g ones =
    if Bitset.length ones <> Graph.n g then false
    else
      match Subexp_lcl.decode_onebit ?params prob g ones with
      | labeling -> Lcl.Problem.verify prob g labeling
      | exception Subexp_lcl.Encoding_failure _ -> false
      | exception Advice.Onebit.Conversion_failure _ -> false
      | exception Invalid_argument _ -> false
  in
  { prove; verify }

let completeness system g =
  match system.prove g with
  | certificate -> system.verify g certificate
  | exception _ -> false

let soundness_sample rng system g ~trials =
  let n = Graph.n g in
  let reject certificate = not (system.verify g certificate) in
  let all_zero = Bitset.create n in
  let all_one = Bitset.of_list n (List.init n (fun i -> i)) in
  reject all_zero && reject all_one
  && List.for_all
       (fun _ ->
         let certificate = Bitset.create n in
         for v = 0 to n - 1 do
           if Prng.bool rng then Bitset.add certificate v
         done;
         reject certificate)
       (List.init trials (fun i -> i))
