open Netgraph

type params = {
  orientation : Balanced_orientation.params;
  coloring : Two_coloring.params;
}

let default_params =
  {
    orientation = Balanced_orientation.default_params;
    coloring = Two_coloring.default_params;
  }

exception Encoding_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Encoding_failure s)) fmt

let check_input g =
  if not (Traversal.is_bipartite g) then fail "graph is not bipartite";
  Graph.iter_nodes
    (fun v ->
      if Graph.degree g v mod 2 <> 0 then fail "node %d has odd degree" v)
    g

let encode ?(params = default_params) g =
  check_input g;
  let orientation_advice =
    (Balanced_orientation.encode ~params:params.orientation g)
      .Balanced_orientation.assignment
  in
  let coloring_advice = Two_coloring.encode ~params:params.coloring g in
  Advice.Composable.pair orientation_advice coloring_advice

let decode ?(params = default_params) g assignment =
  let orientation_advice, coloring_advice = Advice.Composable.split assignment in
  let o =
    Balanced_orientation.decode ~params:params.orientation g orientation_advice
  in
  let side = Two_coloring.decode ~params:params.coloring g coloring_advice in
  let colors = Array.make (Graph.m g) 0 in
  Graph.iter_edges
    (fun e (u, v) ->
      let tail = if Orientation.points_from o u v then u else v in
      (* Red = oriented out of a color-1 ("white") node. *)
      colors.(e) <- (if side.(tail) = 1 then 1 else 2))
    g;
  colors

let verify g colors =
  Array.length colors = Graph.m g
  && Array.for_all (fun c -> c = 1 || c = 2) colors
  && Graph.fold_nodes
       (fun v acc ->
         let red =
           Array.fold_left
             (fun n e -> if colors.(e) = 1 then n + 1 else n)
             0 (Graph.incident_edges g v)
         in
         acc && 2 * red = Graph.degree g v)
       g true
