(** Local decompression of arbitrary edge subsets (Contribution 4).

    To store an arbitrary subset X ⊆ E one needs |E| bits in total, i.e. at
    least d/2 bits per node on d-regular graphs; the trivial local encoding
    (every node stores a membership bit per incident edge) costs d bits.
    The paper closes the gap to within an additive constant: spend one bit
    per node on an almost-balanced orientation (Contribution 3), then let
    every node store membership bits only for its *outgoing* edges — at
    most ⌈d/2⌉ of them.  A node of degree d stores at most ⌈d/2⌉ + 1 bits,
    and decompression is local: recover the orientation, read your own
    out-vector, and ask each in-neighbor for the bit of the shared edge
    (one extra round). *)

val bits_bound : int -> int
(** [bits_bound d] = ⌈d/2⌉ + 1, the paper's per-node budget. *)

val encode :
  ?params:Balanced_orientation.params ->
  Netgraph.Graph.t ->
  Netgraph.Bitset.t ->
  Advice.Assignment.t
(** [encode g x] compresses the edge set [x] (a set of edge ids).  The
    resulting string at a node of degree [d] has length 1 + outdeg ≤
    [bits_bound d].  @raise Balanced_orientation.Encoding_failure when the
    underlying orientation schema cannot place its anchors. *)

val decode :
  ?params:Balanced_orientation.params ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  Netgraph.Bitset.t
(** Recover the edge set. *)

val incident_memberships :
  ?params:Balanced_orientation.params ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  int ->
  (int * bool) list
(** What one node learns locally: for each incident edge id, whether it
    belongs to the compressed set. *)
