(** Locally checkable proofs from advice schemas (Section 1.2).

    Corollary of Contribution 1: a 1-bit advice schema for an LCL Π is a
    locally checkable proof that Π is solvable.  The prover publishes the
    advice; the verifier decodes a candidate solution with it and checks
    Π's constraint in every T-hop neighborhood.

    - {b Completeness}: honest advice decodes to a valid solution, so
      every node accepts.
    - {b Soundness}: on a graph where Π has no solution, *every* advice
      string is rejected by some node — acceptance would exhibit a valid
      solution, contradiction.  (This is soundness in the strong,
      information-theoretic sense; no assumption on the prover.)

    Note this is not a 1-round proof labeling scheme: the verifier
    inspects a constant-radius neighborhood larger than 1, exactly as the
    paper points out. *)

type t = {
  prove : Netgraph.Graph.t -> Netgraph.Bitset.t;
      (** May raise if the claim is false (Π unsolvable here). *)
  verify : Netgraph.Graph.t -> Netgraph.Bitset.t -> bool;
      (** Total: malformed certificates are rejected, never raise. *)
}

val of_lcl : ?params:Subexp_lcl.params -> Lcl.Problem.t -> t
(** The proof system induced by the one-bit Section-4 schema. *)

val completeness : t -> Netgraph.Graph.t -> bool
(** Prove then verify; true when the claim holds and the system works. *)

val soundness_sample :
  Netgraph.Prng.t -> t -> Netgraph.Graph.t -> trials:int -> bool
(** For a graph where the claim is false: sample random certificates
    (including all-zeros and all-ones) and check that every one is
    rejected.  A sampled check of the unconditional soundness property. *)
