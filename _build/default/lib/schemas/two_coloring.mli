(** Proper 2-coloring of bipartite graphs with sparse advice.

    The paper's running example of a composable schema (Section 3.5, Πv):
    2-coloring is a *global* problem without advice (Ω(n) on paths), but a
    sparse set of beacon nodes, each holding a single bit — its own color —
    makes it local: any node finds a nearby beacon and flips the beacon's
    color by the parity of the distance.  Bipartiteness makes every path to
    the beacon give the same parity, so any beacon and any shortest path
    will do. *)

type params = { spread : int  (** beacon ruling-set distance α *) }

val default_params : params
val onebit_params : params

exception Encoding_failure of string

val encode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t
(** Beacons hold one bit: their side of the bipartition.
    @raise Encoding_failure if the graph is not bipartite. *)

val decode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t -> int array
(** Colors in {1, 2}.  @raise Encoding_failure when some component has no
    beacon. *)

val decode_radius : params -> int
(** Every node finds a beacon within this distance. *)
