open Netgraph

type params = {
  spread : int;
  inner_margin : int;
}

let default_params = { spread = 48; inner_margin = 2 }

exception Encoding_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Encoding_failure s)) fmt

(* Lcl_support failures become this schema's failures at the API
   boundary. *)
let wrap f =
  try f () with Lcl_support.Support_failure msg -> raise (Encoding_failure msg)

(* ------------------------------------------------------------------ *)
(* Clustering (shared, deterministic) *)

(* First-arrival Voronoi from the centers, seeded in increasing id order:
   encoder and decoder derive identical clusters from the same center
   set. *)
let voronoi g centers =
  let cluster = Array.make (Graph.n g) (-1) in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      cluster.(r) <- r;
      Queue.add r queue)
    centers;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Array.iter
      (fun u ->
        if cluster.(u) < 0 then begin
          cluster.(u) <- cluster.(v);
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  cluster

let frontier = Lcl_support.frontier

(* ------------------------------------------------------------------ *)
(* Variable-length schema *)

let solve_or_fail prob g =
  match prob.Lcl.Problem.solve g with
  | Some l -> l
  | None -> fail "problem %s has no solution on this graph" prob.Lcl.Problem.name

let encode ?(params = default_params) prob g =
  let l = solve_or_fail prob g in
  let centers = Ruling.ruling_set g ~alpha:params.spread in
  let cluster = voronoi g centers in
  let is_frontier = frontier g cluster prob.Lcl.Problem.radius in
  let assignment = Advice.Assignment.empty g in
  List.iter
    (fun r ->
      let nodes = Lcl_support.cluster_frontier_nodes g cluster is_frontier r in
      assignment.(r) <- "1" ^ Lcl_support.frontier_string prob l nodes)
    centers;
  assignment

let decode ?(params = default_params) prob g assignment =
  ignore params;
  wrap (fun () ->
      let centers = Advice.Assignment.holders assignment in
      if centers = [] && Graph.n g > 0 then fail "no cluster centers in advice";
      let cluster = voronoi g centers in
      let is_frontier = frontier g cluster prob.Lcl.Problem.radius in
      let pinned = Lcl_support.pinned_labeling prob g in
      List.iter
        (fun r ->
          let s = assignment.(r) in
          if String.length s < 1 || s.[0] <> '1' then
            fail "center %d: malformed advice" r;
          let body = String.sub s 1 (String.length s - 1) in
          let nodes =
            Lcl_support.cluster_frontier_nodes g cluster is_frontier r
          in
          Lcl_support.decode_frontier_string prob g pinned nodes body)
        centers;
      Lcl_support.complete_clusters prob g cluster centers pinned)

(* Certify. *)
let encode ?(params = default_params) prob g =
  let assignment = wrap (fun () -> encode ~params prob g) in
  let result = decode ~params prob g assignment in
  if not (Lcl.Problem.verify prob g result) then
    fail "certification failed (variable-length schema)";
  assignment

(* ------------------------------------------------------------------ *)
(* Uniform one-bit schema *)

(* The independent carrier set of a cluster: an id-greedy MIS of the
   cluster's *interior* (nodes all of whose neighbors lie in the same
   cluster — so carriers of different clusters are never adjacent and
   solution bits stay isolated), minus the marker nodes and their
   neighbors.  A pure function of (graph, centers, marker bits), so
   encoder and decoder agree. *)
let carrier_set g cluster markers _params r =
  let eligible =
    Graph.fold_nodes
      (fun v acc ->
        if
          cluster.(v) = r
          && Array.for_all (fun u -> cluster.(u) = r) (Graph.neighbors g v)
          && (not (Bitset.mem markers v))
          && not
               (Array.exists
                  (fun u -> Bitset.mem markers u)
                  (Graph.neighbors g v))
        then v :: acc
        else acc)
      g []
    |> List.rev
  in
  Ruling.greedy_mis_within g eligible

let isolated_ones g ones =
  let isolated = Bitset.create (Graph.n g) in
  Bitset.iter
    (fun v ->
      if not (Array.exists (fun u -> Bitset.mem ones u) (Graph.neighbors g v))
      then Bitset.add isolated v)
    ones;
  isolated

let encode_onebit ?(params = default_params) prob g =
  let l = solve_or_fail prob g in
  let centers = Ruling.ruling_set g ~alpha:params.spread in
  let cluster = voronoi g centers in
  let is_frontier = frontier g cluster prob.Lcl.Problem.radius in
  (* Markers: every center holds the fixed payload "0"; the radial header
     code identifies centers to the decoder. *)
  let marker_assignment = Advice.Assignment.empty g in
  List.iter (fun r -> marker_assignment.(r) <- "0") centers;
  let markers =
    try Advice.Onebit.encode g marker_assignment
    with Advice.Onebit.Conversion_failure msg ->
      fail "cannot mark centers: %s" msg
  in
  let ones = Bitset.copy markers in
  List.iter
    (fun r ->
      let nodes = Lcl_support.cluster_frontier_nodes g cluster is_frontier r in
      let b = Lcl_support.frontier_string prob l nodes in
      let carriers = carrier_set g cluster markers params r in
      if List.length carriers < String.length b then
        fail
          "cluster %d: carrier capacity %d below %d frontier bits (graph too \
           dense or spread %d too small)"
          r (List.length carriers) (String.length b) params.spread;
      List.iteri
        (fun j v ->
          if j < String.length b && b.[j] = '1' then Bitset.add ones v)
        carriers)
    centers;
  ones

let decode_onebit ?(params = default_params) prob g ones =
  wrap (fun () ->
      let isolated = isolated_ones g ones in
      let markers = Bitset.copy ones in
      Bitset.iter (fun v -> Bitset.remove markers v) isolated;
      let marker_assignment = Advice.Onebit.decode g markers in
      let centers = Advice.Assignment.holders marker_assignment in
      if centers = [] && Graph.n g > 0 then fail "no cluster markers decoded";
      let cluster = voronoi g centers in
      let is_frontier = frontier g cluster prob.Lcl.Problem.radius in
      let pinned = Lcl_support.pinned_labeling prob g in
      List.iter
        (fun r ->
          let nodes =
            Lcl_support.cluster_frontier_nodes g cluster is_frontier r
          in
          let expected =
            List.fold_left
              (fun acc v -> acc + Lcl_support.labels_width prob g v)
              0 nodes
          in
          let carriers = carrier_set g cluster markers params r in
          if List.length carriers < expected then
            fail "cluster %d: carrier set shorter than frontier string" r;
          let b =
            String.init expected (fun j ->
                if Bitset.mem ones (List.nth carriers j) then '1' else '0')
          in
          Lcl_support.decode_frontier_string prob g pinned nodes b)
        centers;
      Lcl_support.complete_clusters prob g cluster centers pinned)

(* Certify. *)
let encode_onebit ?(params = default_params) prob g =
  let ones = wrap (fun () -> encode_onebit ~params prob g) in
  let result = decode_onebit ~params prob g ones in
  if not (Lcl.Problem.verify prob g result) then
    fail "certification failed (one-bit schema)";
  ones
