open Netgraph

type params = { x : int; r : int }

let default_params = { x = 10; r = 1 }

exception Encoding_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Encoding_failure s)) fmt

let wrap f =
  try f () with Lcl_support.Support_failure msg -> raise (Encoding_failure msg)

(* ------------------------------------------------------------------ *)
(* Sequential carving *)

(* One phase of carving on the remaining graph: every listed center of
   this color claims the ball of radius α(v) + r around itself, where α is
   the Lemma-4.3 radius computed in the remaining graph.  Same-color
   centers are at distance >= 5x (distance coloring), so their claims are
   disjoint and order inside a phase is irrelevant. *)
let carve ?(params = default_params) g centers_with_colors =
  let n = Graph.n g in
  let cluster = Array.make n (-1) in
  let remaining = ref (List.init n (fun v -> v)) in
  let phases =
    List.sort_uniq compare (List.map snd centers_with_colors)
  in
  List.iter
    (fun color ->
      let sub, to_sub, to_orig = Graph.induced g !remaining in
      let centers =
        List.filter_map
          (fun (v, c) ->
            if c = color && cluster.(v) < 0 then Some v else None)
          centers_with_colors
      in
      (* Eligibility and radii are all read off the same phase graph. *)
      let plans =
        List.filter_map
          (fun v ->
            let v_sub = to_sub.(v) in
            if v_sub < 0 then None
            else if Traversal.sphere sub v_sub (2 * params.x) = [] then None
            else begin
              let alpha =
                match
                  Growth.lemma3_alpha sub ~v:v_sub ~r:params.r ~x:params.x
                with
                | Some a -> a
                | None -> 2 * params.x
              in
              Some (v, Traversal.ball sub v_sub (alpha + params.r))
            end)
          centers
      in
      List.iter
        (fun (v, members_sub) ->
          List.iter
            (fun u_sub -> cluster.(to_orig.(u_sub)) <- v)
            members_sub)
        plans;
      remaining := List.filter (fun v -> cluster.(v) < 0) !remaining)
    phases;
  (* Leftovers: cluster id = least node of the final remaining
     component. *)
  if !remaining <> [] then begin
    let sub, _, to_orig = Graph.induced g !remaining in
    Array.iter
      (fun members ->
        match members with
        | [] -> ()
        | least :: _ ->
            List.iter
              (fun u -> cluster.(to_orig.(u)) <- to_orig.(least))
              members)
      (Traversal.component_members sub)
  end;
  cluster

(* ------------------------------------------------------------------ *)
(* Encoder *)

let solve_or_fail prob g =
  match prob.Lcl.Problem.solve g with
  | Some l -> l
  | None -> fail "problem %s has no solution on this graph" prob.Lcl.Problem.name

(* The encoder's center rule: in each phase, every remaining node of the
   phase color with a full radius-2x neighborhood becomes a center. *)
let plan_centers params g coloring =
  let n = Graph.n g in
  let cluster = Array.make n (-1) in
  let remaining = ref (List.init n (fun v -> v)) in
  let centers = ref [] in
  let num_colors = Coloring.num_colors coloring in
  for color = 1 to num_colors do
    let sub, to_sub, to_orig = Graph.induced g !remaining in
    let plans =
      List.filter_map
        (fun v ->
          if coloring.(v) <> color || cluster.(v) >= 0 then None
          else begin
            let v_sub = to_sub.(v) in
            if v_sub < 0 || Traversal.sphere sub v_sub (2 * params.x) = []
            then None
            else begin
              let alpha =
                match
                  Growth.lemma3_alpha sub ~v:v_sub ~r:params.r ~x:params.x
                with
                | Some a -> a
                | None -> 2 * params.x
              in
              Some (v, Traversal.ball sub v_sub (alpha + params.r))
            end
          end)
        !remaining
    in
    List.iter
      (fun (v, members_sub) ->
        centers := (v, color) :: !centers;
        List.iter (fun u_sub -> cluster.(to_orig.(u_sub)) <- v) members_sub)
      plans;
    remaining := List.filter (fun v -> cluster.(v) < 0) !remaining
  done;
  List.rev !centers

let encode ?(params = default_params) prob g =
  let l = solve_or_fail prob g in
  let coloring = Coloring.distance_coloring g (5 * params.x) in
  let centers = plan_centers params g coloring in
  let cluster = carve ~params g centers in
  let is_frontier = Lcl_support.frontier g cluster prob.Lcl.Problem.radius in
  let assignment = Advice.Assignment.empty g in
  (* Carved clusters: center holds (color, frontier string). *)
  List.iter
    (fun (v, color) ->
      let nodes = Lcl_support.cluster_frontier_nodes g cluster is_frontier v in
      assignment.(v) <-
        Advice.Composable.pair_strings
          (Advice.Bits.encode_int (color - 1))
          (Lcl_support.frontier_string prob l nodes))
    centers;
  (* Leftover components: their least node holds ("", frontier string);
     force a non-empty pairing even when there is nothing to pin, so the
     holder remains detectable. *)
  let center_ids = List.map fst centers in
  let leftover_ids =
    Array.to_list cluster
    |> List.sort_uniq compare
    |> List.filter (fun id -> not (List.mem id center_ids))
  in
  List.iter
    (fun id ->
      let nodes = Lcl_support.cluster_frontier_nodes g cluster is_frontier id in
      assignment.(id) <-
        "0" ^ Advice.Composable.pair_strings ""
                (Lcl_support.frontier_string prob l nodes))
    leftover_ids;
  assignment

(* ------------------------------------------------------------------ *)
(* Decoder *)

let decode ?(params = default_params) prob g assignment =
  wrap (fun () ->
      let holders = Advice.Assignment.holders assignment in
      (* Split holders into carved centers (color payload) and leftover
         pseudo-centers (leading "0" sentinel, empty color). *)
      let centers = ref [] in
      let leftover_bodies = ref [] in
      List.iter
        (fun v ->
          let s = assignment.(v) in
          if String.length s > 0 && s.[0] = '0' then begin
            let rest = String.sub s 1 (String.length s - 1) in
            let color_str, body = Advice.Composable.split_string rest in
            if color_str <> "" then fail "node %d: malformed leftover advice" v;
            leftover_bodies := (v, body) :: !leftover_bodies
          end
          else begin
            let color_str, body = Advice.Composable.split_string s in
            if color_str = "" then fail "node %d: malformed center advice" v;
            centers := (v, Advice.Bits.decode color_str + 1, body) :: !centers
          end)
        holders;
      let cluster =
        carve ~params g (List.map (fun (v, c, _) -> (v, c)) !centers)
      in
      let is_frontier = Lcl_support.frontier g cluster prob.Lcl.Problem.radius in
      let pinned = Lcl_support.pinned_labeling prob g in
      let pin id body =
        let nodes = Lcl_support.cluster_frontier_nodes g cluster is_frontier id in
        Lcl_support.decode_frontier_string prob g pinned nodes body
      in
      List.iter (fun (v, _, body) -> pin v body) !centers;
      List.iter (fun (v, body) -> pin v body) !leftover_bodies;
      let ids = Array.to_list cluster |> List.sort_uniq compare in
      Lcl_support.complete_clusters prob g cluster ids pinned)

(* Certify. *)
let encode ?(params = default_params) prob g =
  let assignment = wrap (fun () -> encode ~params prob g) in
  let result = decode ~params prob g assignment in
  if not (Lcl.Problem.verify prob g result) then
    fail "certification failed (adaptive schema)";
  assignment
