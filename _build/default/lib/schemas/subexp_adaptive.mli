(** The paper's adaptive Section-4 clustering, faithfully replayed.

    {!Subexp_lcl} uses a ruling-set Voronoi clustering that both sides
    derive without advice.  The paper's own construction is different and
    this module implements it: compute a distance-(5x) coloring of the
    graph, process color classes in ascending order, and in phase i let
    every remaining node v of color i with a full radius-2x neighborhood
    carve the cluster of radius α(v) + r around itself in the remaining
    graph G_i, where α(v) ∈ [x, 2x] is the Lemma-4.3 radius (the ball
    dominating its boundary sphere — see {!Netgraph.Growth.lemma3_alpha}).
    Nodes left over after all phases see their entire remaining component
    within distance 2x and are completed by brute force.

    The advice (variable-length) carries, per carved cluster, the pair
    (center's distance-coloring color, frontier label string): the color
    is what lets the decoder replay the sequential carving exactly; the
    radii α(v) are recomputed, not transmitted.  Leftover components pin
    their frontier through a pseudo-center (their least node) holding an
    empty color.  The encoder certifies by running the decoder. *)

type params = {
  x : int;  (** base scale; cluster radii fall in [x, 2x] *)
  r : int;  (** the Lemma-4.3 margin and extra carve radius *)
}

val default_params : params

exception Encoding_failure of string

val encode :
  ?params:params -> Lcl.Problem.t -> Netgraph.Graph.t -> Advice.Assignment.t

val decode :
  ?params:params ->
  Lcl.Problem.t ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  Lcl.Labeling.t

val carve :
  ?params:params ->
  Netgraph.Graph.t ->
  (int * int) list ->
  int array
(** [carve g centers_with_colors] replays the sequential clustering from
    (center, color) pairs: returns the cluster id of every node, where a
    carved node's id is its center and a leftover node's id is the least
    node of its final remaining component.  Exposed for tests. *)
