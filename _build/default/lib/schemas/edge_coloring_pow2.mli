(** Δ-edge-coloring of bipartite Δ-regular graphs, Δ a power of two
    (Section 5 extension).

    Recursively split: a splitting of a 2k-regular bipartite graph yields
    two k-regular bipartite subgraphs, colored with disjoint palettes.
    After log₂ Δ levels, the classes are perfect matchings = color classes.
    The advice is the Lemma-1 pairing of one splitting assignment per
    subgraph per level (2^level subgraphs at each level), in a fixed
    canonical order both sides derive from the recursion. *)

type params = { splitting : Splitting.params }

val default_params : params

exception Encoding_failure of string

val encode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t
(** @raise Encoding_failure unless the graph is bipartite and Δ-regular
    with Δ a power of two. *)

val decode : ?params:params -> Netgraph.Graph.t -> Advice.Assignment.t -> int array
(** Edge colors indexed by edge id, in [1..Δ]. *)

val verify : Netgraph.Graph.t -> int array -> bool
(** A proper edge coloring with at most Δ colors. *)
