(** Solving any LCL with one bit of advice on graphs of sub-exponential
    growth (Contribution 1, Section 4).

    The encoder fixes a global solution ℓ of the LCL, clusters the graph
    (a ruling set of *centers* plus the deterministic Voronoi partition
    both sides compute identically), and pins ℓ on the *frontier* — every
    node whose checkability ball touches another cluster.  With the
    frontier pinned, each cluster can be completed independently by brute
    force: a constraint at a cluster node only involves the cluster's own
    free labels and pinned frontier labels, and a completion exists because
    ℓ itself is one.

    Two encodings of (centers + frontier labels) are provided:

    - {b variable-length} — each center holds ["1" ^ B] where [B]
      concatenates the ℓ-labels of its cluster's frontier nodes in id
      order.  Bit-holders are exactly the centers: sparse, composable.
    - {b uniform one-bit} — the full Section-4 construction.  Centers are
      marked by the radial header code of {!Advice.Onebit} (connected
      1-components of size four); the frontier string [B] is spread over
      an id-greedy maximal independent set [Z'] inside the cluster's inner
      ball, one bit per node, as *isolated* 1s.  The decoder first strips
      isolated 1s (solution bits), decodes the remaining marker structure
      to find the centers, recomputes [Z'] itself — it is a pure function
      of the clustering — and reads [B] back positionally.

    The one-bit variant needs the cluster's inner ball to hold at least
    |B| independent nodes, i.e. the boundary-to-volume ratio the paper's
    sub-exponential-growth assumption (Lemma 3) provides.  On families
    where the constants don't leave room (e.g. small 2-D grids), the
    encoder raises rather than emit undecodable advice — use the
    variable-length schema there.  Encoders certify by running the
    decoder. *)

type params = {
  spread : int;  (** ruling-set distance between cluster centers *)
  inner_margin : int;
      (** retained for parameter-sweep compatibility; the carrier set now
          uses the whole cluster interior (nodes with no cross-cluster
          neighbor), which keeps different clusters' bits non-adjacent
          with maximal capacity *)
}

val default_params : params

exception Encoding_failure of string

val encode :
  ?params:params -> Lcl.Problem.t -> Netgraph.Graph.t -> Advice.Assignment.t
(** Variable-length schema.  @raise Encoding_failure when the LCL has no
    solution on the graph. *)

val decode :
  ?params:params ->
  Lcl.Problem.t ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  Lcl.Labeling.t

val encode_onebit :
  ?params:params -> Lcl.Problem.t -> Netgraph.Graph.t -> Netgraph.Bitset.t
(** Uniform 1-bit schema.  @raise Encoding_failure on infeasible LCLs or
    insufficient cluster capacity. *)

val decode_onebit :
  ?params:params ->
  Lcl.Problem.t ->
  Netgraph.Graph.t ->
  Netgraph.Bitset.t ->
  Lcl.Labeling.t

val frontier : Netgraph.Graph.t -> int array -> int -> bool array
(** [frontier g cluster radius]: nodes whose radius-ball meets another
    cluster; exposed for tests. *)
