(** Round-based distributed decoders.

    The schema decoders elsewhere in this library are centralized
    simulations of local algorithms (with locality verified by ball
    restriction).  This module implements two of them as genuine
    synchronous message-passing algorithms over {!Localmodel.Rounds}, so
    the round counts the paper's T(Δ) bounds refer to are *executed*, not
    just argued:

    - 2-coloring from beacon advice: colors flood outward from the
      beacons; every node halts on first contact, after at most
      (beacon spread) rounds.
    - balanced orientation from anchor advice: an anchor orients its named
      out-edge; knowledge spreads one trail-hop per round, alternating
      in/out through each node's canonical edge pairing.  Requires advice
      in which every trail carries an anchor (encode with
      [short_threshold = 0]). *)

val two_coloring :
  Netgraph.Graph.t -> Advice.Assignment.t -> int array * int
(** [(colors, rounds)] — colors in {1,2}; agrees with
    {!Two_coloring.decode}.  @raise Failure when some node never hears a
    beacon. *)

val orientation_params : Balanced_orientation.params
(** Orientation parameters with [short_threshold = 0]: every trail is
    anchored, which the message-passing decoder requires. *)

val orientation :
  Netgraph.Graph.t -> Advice.Assignment.t -> Netgraph.Orientation.t * int
(** [(orientation, rounds)] — agrees with {!Balanced_orientation.decode}
    on advice produced with {!orientation_params}.  @raise Failure when
    some edge never learns a direction. *)
