(** Almost-balanced orientations with advice (Contribution 3, Section 5).

    The edge set decomposes canonically into trails (see
    {!Netgraph.Orientation.euler_partition}); orienting every trail
    consistently yields [|indeg - outdeg| <= 1] everywhere.  Short trails
    (length at most [short_threshold]) are oriented by a local rule without
    advice — every node sees its whole trail.  Each long trail receives
    *anchors*: nodes whose advice names the incident-edge slot through
    which their trail flows out of them.  Since every edge belongs to
    exactly one trail, an anchor is unambiguous: nearby nodes walk their
    trail to the closest anchor and orient accordingly.  Anchors appear
    roughly every [cover] trail steps (so decoding is local) and are
    pairwise at least [spacing] apart in the graph (the γ of composability,
    and the spacing the one-bit conversion needs).

    The encoder certifies its output by running the decoder: encoding
    failures raise instead of producing undecodable advice. *)

type params = {
  short_threshold : int;
      (** Trails up to this length are advice-free and oriented by the
          canonical rule. *)
  cover : int;
      (** Target maximal trail-distance from any long-trail node to its
          nearest anchor. *)
  spacing : int;
      (** Minimal pairwise graph distance between anchor nodes.  Must
          exceed [2 * Advice.Onebit.decode_radius] when the assignment will
          be converted to one bit per node. *)
}

val default_params : params
(** Small spacing, suitable for the variable-length schema. *)

val onebit_params : params
(** Spacing wide enough for {!encode_onebit} at moderate degrees. *)

exception Encoding_failure of string

type encoding = {
  assignment : Advice.Assignment.t;
  realized_cover : int;
      (** Measured worst trail-distance to an anchor; the decoding
          locality actually achieved. *)
}

val encode :
  ?params:params ->
  ?choose:(Netgraph.Orientation.trail -> bool) ->
  Netgraph.Graph.t ->
  encoding
(** Produce a variable-length advice assignment for the orientation
    problem.  [choose] selects each long trail's direction ([true] = the
    trail's normalized order); short trails are always oriented forward.
    @raise Encoding_failure when anchors cannot be placed. *)

val decode :
  ?params:params ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  Netgraph.Orientation.t
(** Recover the orientation.  @raise Encoding_failure on malformed or
    missing advice. *)

val decode_tolerant :
  ?params:params ->
  Netgraph.Graph.t ->
  Advice.Assignment.t ->
  Netgraph.Orientation.t
(** Like {!decode} but substitutes the canonical default on trails whose
    anchors are missing — used when running the decoder on graph fragments
    for locality measurements, where trails near the fragment boundary are
    truncated. *)

val encode_onebit :
  ?params:params ->
  ?choose:(Netgraph.Orientation.trail -> bool) ->
  Netgraph.Graph.t ->
  Netgraph.Bitset.t
(** Uniform 1-bit-per-node advice (via {!Advice.Onebit}). *)

val decode_onebit :
  ?params:params ->
  Netgraph.Graph.t ->
  Netgraph.Bitset.t ->
  Netgraph.Orientation.t
