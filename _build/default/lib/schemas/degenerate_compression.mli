(** Edge-subset compression via degeneracy orderings (open question 4).

    Section 1.9's fourth open question asks: on a 3-regular graph, can an
    arbitrary edge set X ⊆ E be stored with only 2 bits per node and
    decompressed *locally*?  (3 bits is trivial, ⌈3/2⌉+1 = 3 is what
    Contribution 4 gives at Δ = 3, and 1 bit is impossible.)  The paper
    sketches the centralized half: delete one edge per connected component
    and the rest is 2-degenerate, so a degeneracy orientation has
    out-degree ≤ 2 and out-edge membership vectors cost 2 bits; the
    deleted edge's bit hides at the component's last-removed node, whose
    out-degree is 0.

    This module implements that *global-decoding* construction: the
    decoder recomputes the (canonical, but inherently sequential)
    degeneracy order, so decompression is correct but not local — making
    the open gap concrete and measurable.  The ablation bench compares its
    2 bits/node against Contribution 4's local 3 bits/node. *)

val degeneracy_order : Netgraph.Graph.t -> int array * int
(** Canonical smallest-last order: repeatedly remove the minimum-degree
    node (ties by node id).  Returns (removal position per node, the
    degeneracy number): every node has at most degeneracy-many neighbors removed after it. *)

val orient_by_order : Netgraph.Graph.t -> int array -> Netgraph.Orientation.t
(** Orient every edge from the earlier-removed endpoint to the later one:
    out-degree ≤ degeneracy. *)

exception Unsupported of string

val encode : Netgraph.Graph.t -> Netgraph.Bitset.t -> Advice.Assignment.t
(** 3-regular graphs only: at most 2 bits per node.
    @raise Unsupported when the graph is not 3-regular. *)

val decode : Netgraph.Graph.t -> Advice.Assignment.t -> Netgraph.Bitset.t

val max_bits_per_node : Advice.Assignment.t -> int
