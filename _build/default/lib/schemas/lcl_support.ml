(* Shared machinery of the Section-4 schemas (Subexp_lcl and
   Subexp_adaptive): frontier computation, label (de)serialization for
   frontier nodes, and cluster-by-cluster brute-force completion. *)

open Netgraph

exception Support_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Support_failure s)) fmt

(* Nodes whose checkability ball meets another cluster: their labels must
   be pinned so clusters complete independently. *)
let frontier g cluster radius =
  Array.init (Graph.n g) (fun v ->
      List.exists
        (fun u -> cluster.(u) <> cluster.(v))
        (Traversal.ball g v radius))

(* ------------------------------------------------------------------ *)
(* Label serialization for pinned nodes *)

let node_width prob =
  if prob.Lcl.Problem.node_alphabet = 0 then 0
  else Advice.Bits.width_for prob.Lcl.Problem.node_alphabet

let half_width prob =
  if prob.Lcl.Problem.half_alphabet = 0 then 0
  else Advice.Bits.width_for prob.Lcl.Problem.half_alphabet

let labels_width prob g v =
  node_width prob + (half_width prob * Graph.degree g v)

let encode_labels prob (l : Lcl.Labeling.t) v =
  let buf = Buffer.create 8 in
  if node_width prob > 0 then
    Buffer.add_string buf
      (Advice.Bits.encode ~width:(node_width prob)
         (l.Lcl.Labeling.node_labels.(v) - 1));
  if half_width prob > 0 then
    Array.iter
      (fun x ->
        Buffer.add_string buf
          (Advice.Bits.encode ~width:(half_width prob) (x - 1)))
      l.Lcl.Labeling.half_labels.(v);
  Buffer.contents buf

let decode_labels prob g (l : Lcl.Labeling.t) v s =
  if String.length s <> labels_width prob g v then
    fail "node %d: frontier label block has wrong length" v;
  let pos = ref 0 in
  let take width =
    let part = String.sub s !pos width in
    pos := !pos + width;
    Advice.Bits.decode part + 1
  in
  if node_width prob > 0 then
    l.Lcl.Labeling.node_labels.(v) <- take (node_width prob);
  if half_width prob > 0 then begin
    if Array.length l.Lcl.Labeling.half_labels.(v) <> Graph.degree g v then
      l.Lcl.Labeling.half_labels.(v) <- Array.make (Graph.degree g v) 0;
    for i = 0 to Graph.degree g v - 1 do
      l.Lcl.Labeling.half_labels.(v).(i) <- take (half_width prob)
    done
  end

(* Frontier nodes of one cluster, ascending, and their concatenated label
   string. *)
let cluster_frontier_nodes g cluster is_frontier id =
  Graph.fold_nodes
    (fun v acc -> if cluster.(v) = id && is_frontier.(v) then v :: acc else acc)
    g []
  |> List.rev

let frontier_string prob l nodes =
  String.concat "" (List.map (encode_labels prob l) nodes)

let decode_frontier_string prob g pinned nodes body =
  let pos = ref 0 in
  List.iter
    (fun v ->
      let w = labels_width prob g v in
      if !pos + w > String.length body then fail "frontier string too short";
      decode_labels prob g pinned v (String.sub body !pos w);
      pos := !pos + w)
    nodes;
  if !pos <> String.length body then fail "frontier string too long"

(* ------------------------------------------------------------------ *)
(* Completion *)

let pinned_labeling prob g =
  Lcl.Labeling.create g ~use_halves:(prob.Lcl.Problem.half_alphabet > 0)

let complete_clusters prob g cluster ids pinned =
  List.fold_left
    (fun labeling id ->
      let enforce v = cluster.(v) = id in
      match
        Lcl.Problem.complete prob g labeling ~assignable:enforce ~enforce
      with
      | Some extended -> extended
      | None -> fail "cluster %d admits no completion" id)
    pinned ids
