open Netgraph

type params = { splitting : Splitting.params }

let default_params = { splitting = Splitting.default_params }

exception Encoding_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Encoding_failure s)) fmt

let is_power_of_two d = d > 0 && d land (d - 1) = 0

let check_input g =
  let d = Graph.max_degree g in
  if not (is_power_of_two d) then fail "degree %d is not a power of two" d;
  Graph.iter_nodes
    (fun v -> if Graph.degree g v <> d then fail "graph is not regular")
    g;
  if not (Traversal.is_bipartite g) then fail "graph is not bipartite";
  d

(* Subgraphs share the root's node set; an edge is carried as its endpoint
   pair in root coordinates, so re-identifying it at any level is direct. *)
let graph_of_edges n pairs = Graph.of_edges ~n pairs

let class_edges h colors wanted =
  Graph.fold_edges
    (fun e (u, v) acc -> if colors.(e) = wanted then (u, v) :: acc else acc)
    h []

let encode ?(params = default_params) g =
  let d = check_input g in
  let n = Graph.n g in
  let assignments = ref [] in
  let rec level queue degree =
    if degree > 1 then begin
      let next =
        List.concat_map
          (fun h ->
            let a = Splitting.encode ~params:params.splitting h in
            assignments := a :: !assignments;
            let colors = Splitting.decode ~params:params.splitting h a in
            [
              graph_of_edges n (class_edges h colors 1);
              graph_of_edges n (class_edges h colors 2);
            ])
          queue
      in
      level next (degree / 2)
    end
  in
  level [ g ] d;
  match List.rev !assignments with
  | [] -> Advice.Assignment.empty g
  | parts -> Advice.Composable.pair_list parts

let decode ?(params = default_params) g assignment =
  let d = check_input g in
  let n = Graph.n g in
  if d = 1 then Array.make (Graph.m g) 1
  else begin
    let parts = Advice.Composable.split_list (d - 1) assignment in
    let parts = ref parts in
    let next_part () =
      match !parts with
      | [] -> fail "advice exhausted"
      | p :: rest ->
          parts := rest;
          p
    in
    let rec level queue degree =
      if degree = 1 then queue
      else begin
        let next =
          List.concat_map
            (fun h ->
              let a = next_part () in
              let colors = Splitting.decode ~params:params.splitting h a in
              [
                graph_of_edges n (class_edges h colors 1);
                graph_of_edges n (class_edges h colors 2);
              ])
            queue
        in
        level next (degree / 2)
      end
    in
    let leaves = level [ g ] d in
    let colors = Array.make (Graph.m g) 0 in
    List.iteri
      (fun j leaf ->
        Graph.iter_edges
          (fun _ (u, v) -> colors.(Graph.edge_id g u v) <- j + 1)
          leaf)
      leaves;
    colors
  end

let verify g colors =
  let d = Graph.max_degree g in
  Array.length colors = Graph.m g
  && Array.for_all (fun c -> c >= 1 && c <= d) colors
  && Graph.fold_nodes
       (fun v acc ->
         let seen = Hashtbl.create 8 in
         acc
         && Array.for_all
              (fun e ->
                if Hashtbl.mem seen colors.(e) then false
                else begin
                  Hashtbl.replace seen colors.(e) ();
                  true
                end)
              (Graph.incident_edges g v))
       g true
