(** Exhaustive advice search (Contribution 2, Section 8).

    The ETH connection: if an LCL Π is solvable with β bits of advice per
    node by a local algorithm 𝒜, then a centralized solver can decide Π in
    time 2^{βn} · n · s(n) by trying every advice assignment, running 𝒜 at
    every node, and checking the output — too fast for some LCL under ETH
    once 𝒜 is made cheap to simulate (order-invariant).  This module is
    that centralized solver; experiment E5 measures its 2^{βn} growth. *)

type 'a outcome = {
  result : 'a option;  (** first valid assignment and its output *)
  tried : int;  (** number of advice assignments simulated *)
}

val search :
  Lcl.Problem.t ->
  Netgraph.Graph.t ->
  ids:Localmodel.Ids.t ->
  radius:int ->
  beta:int ->
  decide:(Localmodel.View.t -> int) ->
  (Advice.Assignment.t * int array) outcome
(** Enumerate all [2^(beta * n)] advice assignments in lexicographic
    order; for each, run the [radius]-round view algorithm [decide]
    (producing node labels) and verify Π.  Stops at the first valid
    assignment. *)

val assignment_of_counter : n:int -> beta:int -> int -> Advice.Assignment.t
(** The [i]-th assignment of the enumeration (exposed for tests). *)
