lib/eth/canonical.mli: Hashtbl Localmodel Netgraph
