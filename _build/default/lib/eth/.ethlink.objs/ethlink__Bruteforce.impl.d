lib/eth/bruteforce.ml: Array Graph Lcl Localmodel Netgraph String
