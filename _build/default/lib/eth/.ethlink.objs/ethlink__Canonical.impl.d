lib/eth/canonical.ml: Array Buffer Graph Hashtbl List Localmodel Netgraph Printf
