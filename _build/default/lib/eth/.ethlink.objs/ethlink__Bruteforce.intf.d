lib/eth/bruteforce.mli: Advice Lcl Localmodel Netgraph
