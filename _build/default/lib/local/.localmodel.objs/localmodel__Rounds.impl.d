lib/local/rounds.ml: Array Graph Netgraph
