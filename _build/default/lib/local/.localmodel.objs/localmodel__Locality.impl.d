lib/local/locality.ml: Array Graph Ids List Netgraph Traversal
