lib/local/locality.mli: Ids Netgraph
