lib/local/ids.ml: Array Graph Hashtbl Netgraph Prng
