lib/local/view.ml: Array Graph List Netgraph Traversal
