lib/local/view.mli: Ids Netgraph
