lib/local/ids.mli: Netgraph
