lib/local/rounds.mli: Netgraph
