(** Unique identifier assignments for the LOCAL model.

    The LOCAL model equips every node with a unique identifier from
    [{1, ..., poly(n)}].  Advice may depend on the identifiers, and decoders
    break ties by comparing them, so experiments sweep over different
    assignments to check that schemas do not depend on one particular
    labeling. *)

type t = int array
(** [ids.(v)] is the identifier of node [v]; identifiers are distinct and
    positive. *)

val identity : Netgraph.Graph.t -> t
(** [ids.(v) = v + 1]. *)

val random_permutation : Netgraph.Prng.t -> Netgraph.Graph.t -> t
(** A random bijection onto [{1..n}]. *)

val random_sparse : Netgraph.Prng.t -> Netgraph.Graph.t -> t
(** Random distinct identifiers from [{1..n^2}] (identifier space larger
    than [n], as the model allows). *)

val is_valid : Netgraph.Graph.t -> t -> bool
(** Distinct and positive. *)

val rank : t -> int array
(** [rank ids] maps each node to the number of nodes with smaller
    identifier — the order type of the assignment, which is all an
    order-invariant algorithm may inspect. *)
