open Netgraph

type t = {
  radius : int;
  center : int;
  graph : Graph.t;
  ids : int array;
  dist : int array;
  advice : string array;
  input : int array;
  to_global : int array;
}

let make ?advice ?input g ~ids ~radius v =
  let members = Traversal.bfs_limited g v radius in
  let nodes = List.map fst members in
  let sub, to_sub, to_global = Graph.induced g nodes in
  let nv = Graph.n sub in
  let dist = Array.make nv 0 in
  List.iter (fun (u, d) -> dist.(to_sub.(u)) <- d) members;
  let pick default arr_opt =
    match arr_opt with
    | None -> Array.make nv default
    | Some arr -> Array.init nv (fun i -> arr.(to_global.(i)))
  in
  {
    radius;
    center = to_sub.(v);
    graph = sub;
    ids = Array.init nv (fun i -> ids.(to_global.(i)));
    dist;
    advice = pick "" advice;
    input = pick 0 input;
    to_global;
  }

let map_nodes ?advice ?input g ~ids ~radius f =
  Array.init (Graph.n g) (fun v -> f (make ?advice ?input g ~ids ~radius v))

let find_by_id view id =
  let found = ref None in
  Array.iteri (fun i id' -> if id' = id && !found = None then found := Some i) view.ids;
  !found
