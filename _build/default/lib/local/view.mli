(** Radius-T views.

    After [T] rounds of LOCAL communication a node knows exactly the
    labeled, ID-carrying subgraph induced by its radius-[T] ball.  A view
    packages that fragment with local (re-indexed) node ids; algorithms
    that work on views are locality-[T] by construction. *)

type t = {
  radius : int;
  center : int;  (** index of the center inside the view *)
  graph : Netgraph.Graph.t;  (** induced subgraph of the ball *)
  ids : int array;  (** view node -> global identifier *)
  dist : int array;  (** view node -> distance from the center *)
  advice : string array;  (** view node -> advice bit string *)
  input : int array;  (** view node -> input label (0 = none) *)
  to_global : int array;
      (** view node -> underlying node; for bookkeeping and verification
          only — a faithful LOCAL algorithm must not inspect it. *)
}

val make :
  ?advice:string array ->
  ?input:int array ->
  Netgraph.Graph.t ->
  ids:Ids.t ->
  radius:int ->
  int ->
  t
(** [make g ~ids ~radius v] gathers the radius-[radius] view of node [v]. *)

val map_nodes :
  ?advice:string array ->
  ?input:int array ->
  Netgraph.Graph.t ->
  ids:Ids.t ->
  radius:int ->
  (t -> 'a) ->
  'a array
(** Run a view-based algorithm at every node; the canonical way to execute
    a [T]-round LOCAL algorithm. *)

val find_by_id : t -> int -> int option
(** Locate a view node by its global identifier. *)
